//! DS-1..5 re-expressed as [`ScenarioSpec`]s.
//!
//! Each constructor mirrors the corresponding recipe in
//! [`Scenario::build`](av_simkit::Scenario::build) knob for knob *and draw for draw*: the same RNG
//! stream, the same draw order, the same arithmetic. The tests below (and
//! the golden-trace suite in `av-experiments`) pin that the sampled worlds
//! are **bit-identical** to the fixed scenarios' — the DSL adds a
//! parameter space around the paper's envelope without perturbing it.
//!
//! The one intentional difference is identity: a sampled scenario carries
//! `ScenarioId::Gen(spec.content_hash())`, not the fixed `ScenarioId` —
//! what ran is recorded as content, not as a name. The run digests are
//! unaffected (they hash world state, never the id).

use crate::param::Param;
use crate::spec::{ActorTemplate, ScenarioSpec};
use av_simkit::actor::ActorId;
use av_simkit::road::Road;
use av_simkit::scenario::{ScenarioId, TARGET_ID};

/// DS-1: ego follows a slower lead vehicle in its lane.
pub fn ds1() -> ScenarioSpec {
    ScenarioSpec {
        name: "DS-1".into(),
        road: Road::default(),
        cruise_kph: 45.0,
        duration: 45.0,
        target: 0,
        actors: vec![ActorTemplate::Lead {
            id: TARGET_ID,
            lane: 0,
            x0: Param::jitter(60.0, 2.0),
            speed_kph: Param::Fixed(25.0),
        }],
    }
}

/// DS-2: a pedestrian illegally crosses the street ahead of the ego.
pub fn ds2() -> ScenarioSpec {
    ScenarioSpec {
        name: "DS-2".into(),
        road: Road::default(),
        cruise_kph: 45.0,
        duration: 30.0,
        target: 0,
        actors: vec![ActorTemplate::Crossing {
            id: TARGET_ID,
            x0: Param::jitter(70.0, 2.0),
            from_y: -6.5,
            to_y: 6.5,
            walk: Param::Fixed(1.4),
        }],
    }
}

/// DS-3: a target vehicle parked in the parking lane.
pub fn ds3() -> ScenarioSpec {
    ScenarioSpec {
        name: "DS-3".into(),
        road: Road::default(),
        cruise_kph: 45.0,
        duration: 20.0,
        target: 0,
        actors: vec![ActorTemplate::Parked {
            id: TARGET_ID,
            lane: -1,
            x0: Param::jitter(90.0, 2.0),
        }],
    }
}

/// DS-4: a pedestrian walks toward the ego beside the road, then stops.
pub fn ds4() -> ScenarioSpec {
    ScenarioSpec {
        name: "DS-4".into(),
        road: Road::default(),
        cruise_kph: 45.0,
        duration: 25.0,
        target: 0,
        actors: vec![ActorTemplate::Approaching {
            id: TARGET_ID,
            y: -3.3,
            x0: Param::jitter(95.0, 2.0),
            walk_dist: 5.0,
            walk: Param::Fixed(1.4),
        }],
    }
}

/// DS-5: DS-1 plus randomized oncoming traffic and a trailing car.
pub fn ds5() -> ScenarioSpec {
    ScenarioSpec {
        name: "DS-5".into(),
        road: Road::default(),
        cruise_kph: 45.0,
        duration: 45.0,
        target: 0,
        actors: vec![
            ActorTemplate::Lead {
                id: TARGET_ID,
                lane: 0,
                x0: Param::jitter(60.0, 2.0),
                speed_kph: Param::Fixed(25.0),
            },
            ActorTemplate::OncomingStream {
                first_id: ActorId(10),
                lane: 1,
                count: (2, 4),
                x: Param::Uniform {
                    lo: 60.0,
                    hi: 240.0,
                },
                speed_kph: Param::Uniform { lo: 20.0, hi: 40.0 },
            },
            ActorTemplate::Trailing {
                id: ActorId(20),
                lane: 0,
                speed_kph: Param::Uniform { lo: 20.0, hi: 30.0 },
                x0: Param::jitter(-30.0, 2.0),
            },
        ],
    }
}

/// The spec for a fixed scenario id, or `None` for [`ScenarioId::Gen`].
pub fn spec_for(id: ScenarioId) -> Option<ScenarioSpec> {
    match id {
        ScenarioId::Ds1 => Some(ds1()),
        ScenarioId::Ds2 => Some(ds2()),
        ScenarioId::Ds3 => Some(ds3()),
        ScenarioId::Ds4 => Some(ds4()),
        ScenarioId::Ds5 => Some(ds5()),
        ScenarioId::Gen(_) => None,
    }
}

/// All five fixed-scenario specs, in paper order.
pub fn all() -> [ScenarioSpec; 5] {
    [ds1(), ds2(), ds3(), ds4(), ds5()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{world_fingerprint, world_invariants};
    use av_simkit::scenario::Scenario;

    /// The tentpole contract: DS specs sample worlds bit-identical to
    /// `Scenario::build` across seeds, including the DS-5 random traffic.
    #[test]
    fn ds_specs_are_bit_identical_to_build() {
        for id in ScenarioId::ALL {
            let spec = spec_for(id).unwrap();
            spec.validate().unwrap();
            for seed in [0u64, 1, 7, 42, 1234, 0xDEAD_BEEF] {
                let built = Scenario::build(id, seed);
                let sampled = spec.sample(seed);
                assert_eq!(
                    world_fingerprint(&built.world),
                    world_fingerprint(&sampled.world),
                    "{id} seed {seed}: sampled world diverges from build"
                );
                assert_eq!(built.target, sampled.target, "{id} seed {seed}");
                assert_eq!(
                    built.cruise_speed.to_bits(),
                    sampled.cruise_speed.to_bits(),
                    "{id} seed {seed}"
                );
                assert_eq!(built.duration.to_bits(), sampled.duration.to_bits());
                assert_eq!(sampled.id, spec.scenario_id());
            }
        }
    }

    /// The fingerprint actually discriminates: different seeds (jitter)
    /// and different scenarios give different worlds.
    #[test]
    fn fingerprints_discriminate() {
        let spec = ds1();
        assert_ne!(
            world_fingerprint(&spec.sample(1).world),
            world_fingerprint(&spec.sample(2).world)
        );
        assert_ne!(
            world_fingerprint(&ds1().sample(1).world),
            world_fingerprint(&ds2().sample(1).world)
        );
    }

    /// Distinct specs get distinct content hashes (and so distinct ids).
    #[test]
    fn ds_content_hashes_are_distinct() {
        let hashes: Vec<u64> = all().iter().map(ScenarioSpec::content_hash).collect();
        for (i, a) in hashes.iter().enumerate() {
            for b in hashes.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    /// DS-1..4 sampled worlds satisfy the validity contract at any seed;
    /// DS-5's randomized traffic satisfies it at the suite's seeds.
    #[test]
    fn ds_worlds_satisfy_invariants() {
        for spec in [ds1(), ds2(), ds3(), ds4()] {
            for seed in 0..32u64 {
                world_invariants(&spec.sample(seed)).unwrap();
            }
        }
        for seed in [0u64, 7, 1234] {
            world_invariants(&ds5().sample(seed)).unwrap();
        }
    }
}
