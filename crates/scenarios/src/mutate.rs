//! Deterministic, bounded spec mutation — the step operator for
//! coverage-guided boundary search.
//!
//! [`mutate`] nudges a small number of continuous knobs (spawn positions,
//! speeds, walk speeds, cut-in trigger points, ego cruise speed) by
//! uniform deltas drawn from the caller's RNG, clamping every knob into a
//! fixed sane domain via [`Param::shifted`]. Structure (templates, ids,
//! lanes, counts, road) is never changed, so a mutant of a spec that
//! passes [`ScenarioSpec::validate`] passes it too; world-level validity
//! (spawn overlap, reachability) is re-checked by the search driver with
//! [`crate::world_invariants`].
//!
//! Determinism: the mutation consumes exactly `2 × moves` RNG draws (a
//! knob pick and a delta per move), so a given RNG state always yields
//! the same mutant.

use crate::param::Param;
use crate::spec::{ActorTemplate, ScenarioSpec};
use rand::rngs::StdRng;

/// Knob domains (min, max) mutation clamps into.
mod domain {
    /// Forward spawn positions and trigger points (m).
    pub const X: (f64, f64) = (10.0, 250.0);
    /// Trailing-car spawn positions (m, behind the ego).
    pub const X_REAR: (f64, f64) = (-80.0, -5.0);
    /// Vehicle speeds (kph).
    pub const SPEED: (f64, f64) = (5.0, 60.0);
    /// Pedestrian walking speeds (m/s).
    pub const WALK: (f64, f64) = (0.4, 3.0);
    /// Ego cruise speed (kph).
    pub const CRUISE: (f64, f64) = (20.0, 70.0);
}

/// Tuning for [`mutate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MutateConfig {
    /// Number of knob nudges per mutation.
    pub moves: usize,
    /// Maximum |delta| for position knobs (m).
    pub pos_step: f64,
    /// Maximum |delta| for speed knobs (kph).
    pub speed_step: f64,
    /// Maximum |delta| for walking-speed knobs (m/s).
    pub walk_step: f64,
}

impl Default for MutateConfig {
    fn default() -> Self {
        MutateConfig {
            moves: 2,
            pos_step: 12.0,
            speed_step: 6.0,
            walk_step: 0.5,
        }
    }
}

/// A mutable continuous knob of a spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Knob {
    /// `cruise_kph` on the spec itself (actor index ignored).
    Cruise,
    /// A template's spawn/range position parameter.
    X { actor: usize },
    /// A trailing template's (rear) position parameter.
    XRear { actor: usize },
    /// A template's vehicle speed parameter (kph).
    Speed { actor: usize },
    /// A template's walking speed parameter (m/s).
    Walk { actor: usize },
    /// A cut-in template's trigger position.
    CutX { actor: usize },
}

fn knobs_of(spec: &ScenarioSpec) -> Vec<Knob> {
    let mut knobs = vec![Knob::Cruise];
    for (i, t) in spec.actors.iter().enumerate() {
        match t {
            ActorTemplate::Lead { .. } => {
                knobs.push(Knob::X { actor: i });
                knobs.push(Knob::Speed { actor: i });
            }
            ActorTemplate::Crossing { .. } => {
                knobs.push(Knob::X { actor: i });
                knobs.push(Knob::Walk { actor: i });
            }
            ActorTemplate::Parked { .. } => knobs.push(Knob::X { actor: i }),
            ActorTemplate::Approaching { .. } => {
                knobs.push(Knob::X { actor: i });
                knobs.push(Knob::Walk { actor: i });
            }
            ActorTemplate::OncomingStream { .. } => {
                knobs.push(Knob::X { actor: i });
                knobs.push(Knob::Speed { actor: i });
            }
            ActorTemplate::Trailing { .. } => {
                knobs.push(Knob::XRear { actor: i });
                knobs.push(Knob::Speed { actor: i });
            }
            ActorTemplate::CutIn { .. } => {
                knobs.push(Knob::X { actor: i });
                knobs.push(Knob::Speed { actor: i });
                knobs.push(Knob::CutX { actor: i });
            }
        }
    }
    knobs
}

fn shift(p: &mut Param, delta: f64, (lo, hi): (f64, f64)) {
    *p = p.shifted(delta, lo, hi);
}

fn apply(spec: &mut ScenarioSpec, knob: Knob, delta: f64) {
    match knob {
        Knob::Cruise => {
            let (lo, hi) = domain::CRUISE;
            spec.cruise_kph = (spec.cruise_kph + delta).clamp(lo, hi);
        }
        Knob::X { actor } => match &mut spec.actors[actor] {
            ActorTemplate::Lead { x0, .. }
            | ActorTemplate::Crossing { x0, .. }
            | ActorTemplate::Parked { x0, .. }
            | ActorTemplate::Approaching { x0, .. }
            | ActorTemplate::CutIn { x0, .. } => shift(x0, delta, domain::X),
            ActorTemplate::OncomingStream { x, .. } => shift(x, delta, domain::X),
            ActorTemplate::Trailing { x0, .. } => shift(x0, delta, domain::X_REAR),
        },
        Knob::XRear { actor } => {
            if let ActorTemplate::Trailing { x0, .. } = &mut spec.actors[actor] {
                shift(x0, delta, domain::X_REAR);
            }
        }
        Knob::Speed { actor } => match &mut spec.actors[actor] {
            ActorTemplate::Lead { speed_kph, .. }
            | ActorTemplate::OncomingStream { speed_kph, .. }
            | ActorTemplate::Trailing { speed_kph, .. }
            | ActorTemplate::CutIn { speed_kph, .. } => shift(speed_kph, delta, domain::SPEED),
            _ => {}
        },
        Knob::Walk { actor } => match &mut spec.actors[actor] {
            ActorTemplate::Crossing { walk, .. } | ActorTemplate::Approaching { walk, .. } => {
                shift(walk, delta, domain::WALK)
            }
            _ => {}
        },
        Knob::CutX { actor } => {
            if let ActorTemplate::CutIn { cut_x, .. } = &mut spec.actors[actor] {
                shift(cut_x, delta, domain::X);
            }
        }
    }
}

fn step_for(knob: Knob, cfg: &MutateConfig) -> f64 {
    match knob {
        Knob::Cruise | Knob::Speed { .. } => cfg.speed_step,
        Knob::Walk { .. } => cfg.walk_step,
        Knob::X { .. } | Knob::XRear { .. } | Knob::CutX { .. } => cfg.pos_step,
    }
}

/// Returns a bounded mutant of `spec`: `cfg.moves` knobs picked and
/// nudged with draws from `rng` (see the module docs for the RNG
/// contract). The mutant keeps the parent's structure and name; its
/// [`ScenarioSpec::content_hash`] changes whenever any knob moved.
pub fn mutate(spec: &ScenarioSpec, rng: &mut StdRng, cfg: &MutateConfig) -> ScenarioSpec {
    let mut out = spec.clone();
    let knobs = knobs_of(spec);
    if knobs.is_empty() {
        return out;
    }
    for _ in 0..cfg.moves {
        let knob = knobs[rng.random_range(0..knobs.len())];
        let step = step_for(knob, cfg);
        let delta = if step > 0.0 {
            rng.random_range(-step..step)
        } else {
            0.0
        };
        apply(&mut out, knob, delta);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ds;
    use av_simkit::rng::run_rng;

    #[test]
    fn mutation_is_deterministic() {
        let spec = ds::ds2();
        let cfg = MutateConfig::default();
        let a = mutate(&spec, &mut run_rng(9, 1), &cfg);
        let b = mutate(&spec, &mut run_rng(9, 1), &cfg);
        let c = mutate(&spec, &mut run_rng(9, 2), &cfg);
        assert_eq!(a.content_hash(), b.content_hash());
        // Different RNG state -> (almost surely) a different mutant.
        assert_ne!(a.content_hash(), c.content_hash());
    }

    #[test]
    fn mutants_of_valid_specs_stay_valid() {
        let cfg = MutateConfig {
            moves: 4,
            ..MutateConfig::default()
        };
        for spec in ds::all() {
            let mut rng = run_rng(3, 0x77);
            let mut current = spec;
            for _ in 0..50 {
                current = mutate(&current, &mut rng, &cfg);
                current
                    .validate()
                    .unwrap_or_else(|e| panic!("mutant of {} became invalid: {e}", current.name));
            }
        }
    }

    #[test]
    fn mutation_changes_the_content_hash_but_not_structure() {
        let spec = ds::ds5();
        let mut rng = run_rng(11, 0x77);
        let m = mutate(&spec, &mut rng, &MutateConfig::default());
        assert_ne!(spec.content_hash(), m.content_hash());
        assert_eq!(spec.actors.len(), m.actors.len());
        assert_eq!(spec.name, m.name);
        assert_eq!(spec.road, m.road);
    }

    #[test]
    fn knob_domains_hold_under_extreme_steps() {
        let cfg = MutateConfig {
            moves: 8,
            pos_step: 500.0,
            speed_step: 200.0,
            walk_step: 10.0,
        };
        let mut rng = run_rng(1, 0x77);
        let mut spec = ds::ds5();
        for _ in 0..30 {
            spec = mutate(&spec, &mut rng, &cfg);
        }
        assert!((20.0..=70.0).contains(&spec.cruise_kph));
        for t in &spec.actors {
            if let crate::spec::ActorTemplate::Trailing { x0, .. } = t {
                let (lo, hi) = x0.bounds();
                assert!(lo >= -80.0 && hi <= -5.0, "{t:?}");
            }
        }
        spec.validate().unwrap();
    }
}
