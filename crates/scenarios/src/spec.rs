//! The typed scenario DSL: specs, templates, sampling, and invariants.
//!
//! A [`ScenarioSpec`] is a *recipe* for a family of worlds: a road layout,
//! a list of [`ActorTemplate`]s with [`Param`]-valued knobs, the index of
//! the scripted target, and the run duration. [`ScenarioSpec::sample`]
//! turns a recipe plus a seed into a concrete [`Scenario`] through the
//! same simkit RNG stream (`0xD5`) that [`Scenario::build`] uses — which
//! is what lets the `ds` module re-express DS-1..5 bit-identically.
//!
//! # Draw-order contract
//!
//! Sampling draw order is part of each template's public contract (it is
//! what makes a spec's worlds reproducible across versions): templates are
//! sampled in `actors` order, and each template documents the exact
//! sequence of RNG draws it performs. Degenerate parameter ranges consume
//! no draws (see [`Param::sample`]).

use crate::param::Param;
use av_simkit::actor::{separation, Actor, ActorId, ActorKind};
use av_simkit::behavior::{Behavior, OnFinish, Waypoint};
use av_simkit::math::Vec2;
use av_simkit::rng::run_rng;
use av_simkit::road::Road;
use av_simkit::scenario::{Scenario, ScenarioId, EGO_ID};
use av_simkit::units::kph_to_mps;
use av_simkit::world::World;
use av_suite::fnv::Fnv1a;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Version tag folded into every [`ScenarioSpec::content_hash`]. Bump it
/// whenever sampling semantics change so stale cache entries can never be
/// mistaken for current ones.
pub const SPEC_VERSION: u32 = 1;

/// Hard ceiling on the number of actors a spec may spawn (ego excluded).
pub const MAX_ACTORS: usize = 24;

/// Longitudinal distance (m) a cut-in vehicle travels while merging into
/// the ego lane after reaching its trigger point.
pub const CUT_MERGE_M: f64 = 20.0;

/// Why a spec (or a world sampled from one) is invalid.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The spec has no actor templates.
    NoActors,
    /// `target` does not index into `actors`.
    TargetOutOfRange {
        /// The offending index.
        target: usize,
        /// Number of templates in the spec.
        len: usize,
    },
    /// Two templates can spawn the same actor id.
    DuplicateActorId(ActorId),
    /// A template claims an id reserved for the ego.
    ReservedActorId(ActorId),
    /// The spec can spawn more than [`MAX_ACTORS`] actors.
    TooManyActors {
        /// The ceiling.
        max: usize,
        /// What the spec could spawn.
        got: usize,
    },
    /// A template references a lane outside the road's range.
    LaneOutOfRange {
        /// The offending lane index.
        lane: i32,
        /// Smallest valid lane.
        min: i32,
        /// Largest valid lane.
        max: i32,
    },
    /// A plain scalar field is not finite.
    NonFiniteField(&'static str),
    /// A [`Param`] range is unordered or non-finite.
    MalformedParam(&'static str),
    /// A count range has `min > max` or exceeds the actor ceiling.
    BadCountRange {
        /// Lower bound.
        min: usize,
        /// Upper bound.
        max: usize,
    },
    /// The road layout is degenerate (non-positive lane width, ego lane
    /// missing, or non-finite speed limit).
    BadRoad,
    /// Cruise speed or duration is not strictly positive and finite.
    BadRunParams,
    /// Two spawned actors overlap at t = 0.
    OverlappingSpawn(ActorId, ActorId),
    /// The built world has no actor with the target id.
    MissingTarget(ActorId),
    /// The target spawned at or behind the ego.
    TargetBehindEgo {
        /// Target longitudinal position (m).
        x: f64,
    },
    /// The target spawned further ahead than the ego can cover in-run.
    TargetUnreachable {
        /// Ego-to-target distance (m).
        distance: f64,
        /// Reachable horizon (m) for this cruise speed and duration.
        horizon: f64,
    },
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::NoActors => write!(f, "spec has no actor templates"),
            SpecError::TargetOutOfRange { target, len } => {
                write!(
                    f,
                    "target index {target} out of range (spec has {len} templates)"
                )
            }
            SpecError::DuplicateActorId(id) => write!(f, "duplicate actor id {id}"),
            SpecError::ReservedActorId(id) => write!(f, "actor id {id} is reserved for the ego"),
            SpecError::TooManyActors { max, got } => {
                write!(f, "spec can spawn {got} actors (ceiling {max})")
            }
            SpecError::LaneOutOfRange { lane, min, max } => {
                write!(f, "lane {lane} outside road lanes [{min}, {max}]")
            }
            SpecError::NonFiniteField(name) => write!(f, "field {name} is not finite"),
            SpecError::MalformedParam(name) => write!(f, "parameter {name} is malformed"),
            SpecError::BadCountRange { min, max } => {
                write!(f, "count range {min}..={max} is invalid")
            }
            SpecError::BadRoad => write!(f, "degenerate road layout"),
            SpecError::BadRunParams => write!(f, "cruise speed and duration must be positive"),
            SpecError::OverlappingSpawn(a, b) => {
                write!(f, "actors {a} and {b} overlap at spawn")
            }
            SpecError::MissingTarget(id) => write!(f, "world has no target actor {id}"),
            SpecError::TargetBehindEgo { x } => {
                write!(f, "target spawned at x = {x:.1} m, not ahead of the ego")
            }
            SpecError::TargetUnreachable { distance, horizon } => {
                write!(
                    f,
                    "target {distance:.1} m ahead exceeds the {horizon:.1} m run horizon"
                )
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// A parameterized road user. Each variant documents its **pinned draw
/// order** — the exact RNG draws `spawn` performs, in order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ActorTemplate {
    /// A vehicle cruising ahead in lane `lane` (the DS-1/DS-5 lead).
    ///
    /// Draw order: `x0`, then `speed_kph`.
    Lead {
        /// Actor id.
        id: ActorId,
        /// Lane index.
        lane: i32,
        /// Spawn position along x (m).
        x0: Param,
        /// Cruise speed (kph).
        speed_kph: Param,
    },
    /// A pedestrian crossing the street laterally (the DS-2 jaywalker).
    ///
    /// Draw order: `x0`, then `walk`.
    Crossing {
        /// Actor id.
        id: ActorId,
        /// Crossing position along x (m).
        x0: Param,
        /// Starting lateral position (m), typically off-road.
        from_y: f64,
        /// Final lateral position (m) on the far side.
        to_y: f64,
        /// Walking speed (m/s).
        walk: Param,
    },
    /// A vehicle parked in lane `lane` (the DS-3 occluder/target).
    ///
    /// Draw order: `x0`.
    Parked {
        /// Actor id.
        id: ActorId,
        /// Lane index (the parking lane on the paper's road).
        lane: i32,
        /// Spawn position along x (m).
        x0: Param,
    },
    /// A pedestrian walking toward the ego along the road, then stopping
    /// (the DS-4 approacher).
    ///
    /// Draw order: `x0`, then `walk`.
    Approaching {
        /// Actor id.
        id: ActorId,
        /// Lateral position (m), held for the whole walk.
        y: f64,
        /// Spawn position along x (m).
        x0: Param,
        /// Distance walked toward the ego before stopping (m).
        walk_dist: f64,
        /// Walking speed (m/s).
        walk: Param,
    },
    /// A stream of oncoming vehicles sharing lane `lane` (the DS-5
    /// traffic). Positions are sorted ascending and speeds descending
    /// before spawning so the lead-most car is fastest and same-lane cars
    /// never drive through each other.
    ///
    /// Draw order: `count` (one draw iff `count.0 < count.1`), then all
    /// `x` draws, then all `speed_kph` draws (converted to m/s each).
    OncomingStream {
        /// Id of the first vehicle; consecutive ids follow.
        first_id: ActorId,
        /// Lane index (the left-most lane on the paper's road).
        lane: i32,
        /// Vehicle count range (inclusive on both ends).
        count: (usize, usize),
        /// Spawn range along x (m).
        x: Param,
        /// Speed range (kph).
        speed_kph: Param,
    },
    /// A vehicle trailing the ego in lane `lane` (the DS-5 rear car).
    ///
    /// Draw order: `speed_kph` **before** `x0` (matching the historical
    /// DS-5 recipe, where the rear speed is drawn before the rear jitter).
    Trailing {
        /// Actor id.
        id: ActorId,
        /// Lane index.
        lane: i32,
        /// Cruise speed (kph).
        speed_kph: Param,
        /// Spawn position along x (m), typically negative (behind ego).
        x0: Param,
    },
    /// A vehicle starting in an adjacent lane that merges into the ego
    /// lane once it reaches `cut_x`, covering [`CUT_MERGE_M`] meters
    /// longitudinally while merging, then continuing straight.
    ///
    /// Draw order: `x0`, then `speed_kph`, then `cut_x`.
    CutIn {
        /// Actor id.
        id: ActorId,
        /// Starting lane index (must not be the ego lane).
        lane: i32,
        /// Spawn position along x (m).
        x0: Param,
        /// Cruise speed (kph).
        speed_kph: Param,
        /// Longitudinal trigger position where the merge begins (m).
        cut_x: Param,
    },
}

/// Lateral center of `lane`, with the index clamped into the road's lane
/// range (identity for validated specs; keeps sampling total on hostile
/// ones).
fn lane_y(road: &Road, lane: i32) -> f64 {
    road.lane_center(lane.clamp(road.min_lane, road.max_lane))
}

impl ActorTemplate {
    /// The id campaigns refer to this template by — `id` for single-actor
    /// templates, `first_id` for streams.
    pub fn primary_id(&self) -> ActorId {
        match *self {
            ActorTemplate::Lead { id, .. }
            | ActorTemplate::Crossing { id, .. }
            | ActorTemplate::Parked { id, .. }
            | ActorTemplate::Approaching { id, .. }
            | ActorTemplate::Trailing { id, .. }
            | ActorTemplate::CutIn { id, .. } => id,
            ActorTemplate::OncomingStream { first_id, .. } => first_id,
        }
    }

    /// Every actor id this template can spawn (the full id block for
    /// streams, so validation catches collisions at any sampled count).
    pub fn id_block(&self) -> Vec<ActorId> {
        match *self {
            ActorTemplate::OncomingStream {
                first_id, count, ..
            } => {
                let n = count.0.max(count.1) as u32;
                (0..n).map(|i| ActorId(first_id.0 + i)).collect()
            }
            _ => vec![self.primary_id()],
        }
    }

    /// Largest number of actors this template can spawn.
    pub fn max_actors(&self) -> usize {
        match *self {
            ActorTemplate::OncomingStream { count, .. } => count.0.max(count.1),
            _ => 1,
        }
    }

    /// Static validity of this template against `road` (lane ranges,
    /// finite fields, well-formed parameter ranges).
    pub fn validate(&self, road: &Road) -> Result<(), SpecError> {
        let lane_ok = |lane: i32| {
            if (road.min_lane..=road.max_lane).contains(&lane) {
                Ok(())
            } else {
                Err(SpecError::LaneOutOfRange {
                    lane,
                    min: road.min_lane,
                    max: road.max_lane,
                })
            }
        };
        let param_ok = |p: &Param, name: &'static str| {
            if p.is_well_formed() {
                Ok(())
            } else {
                Err(SpecError::MalformedParam(name))
            }
        };
        let finite = |v: f64, name: &'static str| {
            if v.is_finite() {
                Ok(())
            } else {
                Err(SpecError::NonFiniteField(name))
            }
        };
        match self {
            ActorTemplate::Lead {
                lane,
                x0,
                speed_kph,
                ..
            } => {
                lane_ok(*lane)?;
                param_ok(x0, "Lead.x0")?;
                param_ok(speed_kph, "Lead.speed_kph")
            }
            ActorTemplate::Crossing {
                x0,
                from_y,
                to_y,
                walk,
                ..
            } => {
                param_ok(x0, "Crossing.x0")?;
                finite(*from_y, "Crossing.from_y")?;
                finite(*to_y, "Crossing.to_y")?;
                param_ok(walk, "Crossing.walk")
            }
            ActorTemplate::Parked { lane, x0, .. } => {
                lane_ok(*lane)?;
                param_ok(x0, "Parked.x0")
            }
            ActorTemplate::Approaching {
                y,
                x0,
                walk_dist,
                walk,
                ..
            } => {
                finite(*y, "Approaching.y")?;
                param_ok(x0, "Approaching.x0")?;
                finite(*walk_dist, "Approaching.walk_dist")?;
                param_ok(walk, "Approaching.walk")
            }
            ActorTemplate::OncomingStream {
                lane,
                count,
                x,
                speed_kph,
                ..
            } => {
                lane_ok(*lane)?;
                if count.0 > count.1 || count.1 > MAX_ACTORS {
                    return Err(SpecError::BadCountRange {
                        min: count.0,
                        max: count.1,
                    });
                }
                param_ok(x, "OncomingStream.x")?;
                param_ok(speed_kph, "OncomingStream.speed_kph")
            }
            ActorTemplate::Trailing {
                lane,
                speed_kph,
                x0,
                ..
            } => {
                lane_ok(*lane)?;
                param_ok(speed_kph, "Trailing.speed_kph")?;
                param_ok(x0, "Trailing.x0")
            }
            ActorTemplate::CutIn {
                lane,
                x0,
                speed_kph,
                cut_x,
                ..
            } => {
                lane_ok(*lane)?;
                param_ok(x0, "CutIn.x0")?;
                param_ok(speed_kph, "CutIn.speed_kph")?;
                param_ok(cut_x, "CutIn.cut_x")
            }
        }
    }

    /// Spawns this template's actors into `world`, drawing from `rng` in
    /// the variant's pinned order.
    ///
    /// # Panics
    ///
    /// Panics if an actor id is already taken (prevented by
    /// [`ScenarioSpec::validate`]).
    pub fn spawn(&self, world: &mut World, rng: &mut StdRng) {
        match self {
            ActorTemplate::Lead {
                id,
                lane,
                x0,
                speed_kph,
            } => {
                let x = x0.sample(rng);
                let v = kph_to_mps(speed_kph.sample(rng));
                let y = lane_y(&world.road, *lane);
                let actor = Actor::new(
                    *id,
                    ActorKind::Car,
                    Vec2::new(x, y),
                    v,
                    Behavior::CruiseStraight { speed: v },
                );
                world.add_actor(actor).expect("validated spec");
            }
            ActorTemplate::Crossing {
                id,
                x0,
                from_y,
                to_y,
                walk,
            } => {
                let x = x0.sample(rng);
                let w = walk.sample(rng);
                let ped = Actor::new(
                    *id,
                    ActorKind::Pedestrian,
                    Vec2::new(x, *from_y),
                    w,
                    Behavior::waypoints(
                        vec![Waypoint::new(Vec2::new(x, *to_y), w)],
                        OnFinish::Stop,
                    ),
                );
                world.add_actor(ped).expect("validated spec");
            }
            ActorTemplate::Parked { id, lane, x0 } => {
                let x = x0.sample(rng);
                let y = lane_y(&world.road, *lane);
                let actor = Actor::new(*id, ActorKind::Car, Vec2::new(x, y), 0.0, Behavior::Parked);
                world.add_actor(actor).expect("validated spec");
            }
            ActorTemplate::Approaching {
                id,
                y,
                x0,
                walk_dist,
                walk,
            } => {
                let x = x0.sample(rng);
                let w = walk.sample(rng);
                let ped = Actor::new(
                    *id,
                    ActorKind::Pedestrian,
                    Vec2::new(x, *y),
                    w,
                    Behavior::waypoints(
                        vec![Waypoint::new(Vec2::new(x - walk_dist, *y), w)],
                        OnFinish::Stop,
                    ),
                );
                world.add_actor(ped).expect("validated spec");
            }
            ActorTemplate::OncomingStream {
                first_id,
                lane,
                count,
                x,
                speed_kph,
            } => {
                let (n_min, n_max) = *count;
                let n = if n_min < n_max {
                    rng.random_range(n_min..=n_max)
                } else {
                    n_min
                };
                let mut xs: Vec<f64> = (0..n).map(|_| x.sample(rng)).collect();
                let mut vs: Vec<f64> = (0..n).map(|_| kph_to_mps(speed_kph.sample(rng))).collect();
                xs.sort_by(|a, b| a.total_cmp(b));
                vs.sort_by(|a, b| b.total_cmp(a));
                let y = lane_y(&world.road, *lane);
                for (i, (px, v)) in xs.into_iter().zip(vs).enumerate() {
                    let mut npc = Actor::new(
                        ActorId(first_id.0 + i as u32),
                        ActorKind::Car,
                        Vec2::new(px, y),
                        v,
                        Behavior::CruiseStraight { speed: v },
                    );
                    npc.pose.heading = std::f64::consts::PI; // oncoming
                    world.add_actor(npc).expect("validated spec");
                }
            }
            ActorTemplate::Trailing {
                id,
                lane,
                speed_kph,
                x0,
            } => {
                // Speed first, then position — the DS-5 rear-car order.
                let v = kph_to_mps(speed_kph.sample(rng));
                let x = x0.sample(rng);
                let y = lane_y(&world.road, *lane);
                let actor = Actor::new(
                    *id,
                    ActorKind::Car,
                    Vec2::new(x, y),
                    v,
                    Behavior::CruiseStraight { speed: v },
                );
                world.add_actor(actor).expect("validated spec");
            }
            ActorTemplate::CutIn {
                id,
                lane,
                x0,
                speed_kph,
                cut_x,
            } => {
                let x = x0.sample(rng);
                let v = kph_to_mps(speed_kph.sample(rng));
                let cx = cut_x.sample(rng);
                let y = lane_y(&world.road, *lane);
                let ego_y = lane_y(&world.road, 0);
                let actor = Actor::new(
                    *id,
                    ActorKind::Car,
                    Vec2::new(x, y),
                    v,
                    Behavior::waypoints(
                        vec![
                            Waypoint::new(Vec2::new(cx, y), v),
                            Waypoint::new(Vec2::new(cx + CUT_MERGE_M, ego_y), v),
                        ],
                        OnFinish::Continue,
                    ),
                );
                world.add_actor(actor).expect("validated spec");
            }
        }
    }

    /// Folds the template into a content hash (variant tag + all fields).
    pub fn fold(&self, h: &mut Fnv1a) {
        match self {
            ActorTemplate::Lead {
                id,
                lane,
                x0,
                speed_kph,
            } => {
                h.write(b"lead");
                h.write_u64(u64::from(id.0));
                h.write_u64(*lane as u64);
                x0.fold(h);
                speed_kph.fold(h);
            }
            ActorTemplate::Crossing {
                id,
                x0,
                from_y,
                to_y,
                walk,
            } => {
                h.write(b"cross");
                h.write_u64(u64::from(id.0));
                x0.fold(h);
                h.write_f64(*from_y);
                h.write_f64(*to_y);
                walk.fold(h);
            }
            ActorTemplate::Parked { id, lane, x0 } => {
                h.write(b"park");
                h.write_u64(u64::from(id.0));
                h.write_u64(*lane as u64);
                x0.fold(h);
            }
            ActorTemplate::Approaching {
                id,
                y,
                x0,
                walk_dist,
                walk,
            } => {
                h.write(b"appr");
                h.write_u64(u64::from(id.0));
                h.write_f64(*y);
                x0.fold(h);
                h.write_f64(*walk_dist);
                walk.fold(h);
            }
            ActorTemplate::OncomingStream {
                first_id,
                lane,
                count,
                x,
                speed_kph,
            } => {
                h.write(b"oncoming");
                h.write_u64(u64::from(first_id.0));
                h.write_u64(*lane as u64);
                h.write_u64(count.0 as u64);
                h.write_u64(count.1 as u64);
                x.fold(h);
                speed_kph.fold(h);
            }
            ActorTemplate::Trailing {
                id,
                lane,
                speed_kph,
                x0,
            } => {
                h.write(b"trail");
                h.write_u64(u64::from(id.0));
                h.write_u64(*lane as u64);
                speed_kph.fold(h);
                x0.fold(h);
            }
            ActorTemplate::CutIn {
                id,
                lane,
                x0,
                speed_kph,
                cut_x,
            } => {
                h.write(b"cutin");
                h.write_u64(u64::from(id.0));
                h.write_u64(*lane as u64);
                x0.fold(h);
                speed_kph.fold(h);
                cut_x.fold(h);
            }
        }
    }
}

/// A typed, hashable recipe for a family of scenarios.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Human label for reports. **Not** part of the content hash.
    pub name: String,
    /// Road layout the world is built on.
    pub road: Road,
    /// Ego cruise speed (kph).
    pub cruise_kph: f64,
    /// Nominal run duration (s).
    pub duration: f64,
    /// Index into `actors` of the scripted target template.
    pub target: usize,
    /// The road users, spawned (and sampled) in order.
    pub actors: Vec<ActorTemplate>,
}

impl ScenarioSpec {
    /// Static validity: target index, id uniqueness (over full id blocks),
    /// actor ceiling, lane ranges, finite fields, well-formed parameters.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.actors.is_empty() {
            return Err(SpecError::NoActors);
        }
        if self.target >= self.actors.len() {
            return Err(SpecError::TargetOutOfRange {
                target: self.target,
                len: self.actors.len(),
            });
        }
        let road_ok = self.road.lane_width.is_finite()
            && self.road.lane_width > 0.0
            && self.road.min_lane <= 0
            && 0 <= self.road.max_lane
            && self.road.speed_limit.is_finite();
        if !road_ok {
            return Err(SpecError::BadRoad);
        }
        let run_ok = self.cruise_kph.is_finite()
            && self.cruise_kph > 0.0
            && self.duration.is_finite()
            && self.duration > 0.0;
        if !run_ok {
            return Err(SpecError::BadRunParams);
        }
        let mut total = 0usize;
        let mut ids = std::collections::BTreeSet::new();
        for t in &self.actors {
            t.validate(&self.road)?;
            total += t.max_actors();
            for id in t.id_block() {
                if id == EGO_ID {
                    return Err(SpecError::ReservedActorId(id));
                }
                if !ids.insert(id) {
                    return Err(SpecError::DuplicateActorId(id));
                }
            }
        }
        if total > MAX_ACTORS {
            return Err(SpecError::TooManyActors {
                max: MAX_ACTORS,
                got: total,
            });
        }
        Ok(())
    }

    /// The spec's stable identity: FNV-1a over the version tag, road,
    /// run parameters, target index, and every template (draw-order
    /// relevant fields included; `name` excluded). This is the value that
    /// keys oracle-cache entries and artifact-store paths for generated
    /// scenarios, and the `hash` inside [`ScenarioId::Gen`].
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write(b"RTSPEC");
        h.write_u64(u64::from(SPEC_VERSION));
        h.write_f64(self.road.lane_width);
        h.write_u64(self.road.min_lane as u64);
        h.write_u64(self.road.max_lane as u64);
        h.write_f64(self.road.speed_limit);
        h.write_f64(self.cruise_kph);
        h.write_f64(self.duration);
        h.write_u64(self.target as u64);
        h.write_u64(self.actors.len() as u64);
        for t in &self.actors {
            t.fold(&mut h);
        }
        h.finish()
    }

    /// The [`ScenarioId`] sampled scenarios carry: `Gen(content_hash())`.
    pub fn scenario_id(&self) -> ScenarioId {
        ScenarioId::Gen(self.content_hash())
    }

    /// Builds a concrete world from this spec and a seed, through the
    /// scenario RNG stream (`run_rng(seed, 0xD5)`) — the same stream
    /// [`Scenario::build`] uses, so a spec that mirrors a fixed scenario's
    /// draw order reproduces its world bit-for-bit.
    ///
    /// Infallible for specs that pass [`ScenarioSpec::validate`]; panics
    /// only on duplicate actor ids (which validation rejects).
    pub fn sample(&self, seed: u64) -> Scenario {
        let mut rng = run_rng(seed, 0xD5);
        let cruise = kph_to_mps(self.cruise_kph);
        let ego = Actor::new(
            EGO_ID,
            ActorKind::Car,
            Vec2::new(0.0, 0.0),
            cruise,
            Behavior::Ego,
        );
        let mut world = World::new(self.road.clone(), ego);
        for t in &self.actors {
            t.spawn(&mut world, &mut rng);
        }
        let target = self.actors[self.target].primary_id();
        Scenario {
            id: self.scenario_id(),
            world,
            target,
            cruise_speed: cruise,
            duration: self.duration,
        }
    }
}

/// Checks the validity contract on a built scenario:
///
/// - **No overlapping spawns.** Every actor pair must have positive
///   [`separation`] at t = 0, *except* pairs of non-ego, non-target NPCs
///   that share a heading and a lateral position — same-lane co-moving
///   traffic the engine explicitly tolerates (the DS-5 oncoming stream
///   sorts speeds so those cars never collide mid-run either).
/// - **Reachable target geometry.** The target exists, spawns strictly
///   ahead of the ego, and within the distance the ego can cover at
///   cruise speed over the run duration (plus a 50 m margin).
pub fn world_invariants(s: &Scenario) -> Result<(), SpecError> {
    let actors = s.world.actors();
    let ego_x = s.world.ego().pose.position.x;
    let target = actors
        .iter()
        .find(|a| a.id == s.target)
        .ok_or(SpecError::MissingTarget(s.target))?;

    let tolerated = |a: &Actor, b: &Actor| {
        a.id != EGO_ID
            && b.id != EGO_ID
            && a.id != s.target
            && b.id != s.target
            && a.pose.heading == b.pose.heading
            && a.pose.position.y == b.pose.position.y
    };
    for (i, a) in actors.iter().enumerate() {
        for b in actors.iter().skip(i + 1) {
            if tolerated(a, b) {
                continue;
            }
            if separation(a, b) <= 0.0 {
                return Err(SpecError::OverlappingSpawn(a.id, b.id));
            }
        }
    }

    let distance = target.pose.position.x - ego_x;
    if distance <= 0.0 {
        return Err(SpecError::TargetBehindEgo {
            x: target.pose.position.x,
        });
    }
    let horizon = s.cruise_speed * s.duration + 50.0;
    if distance > horizon {
        return Err(SpecError::TargetUnreachable { distance, horizon });
    }
    Ok(())
}

/// A bit-exact digest of a world's full initial state: road layout plus
/// every actor's id, kind, size, pose, speed, acceleration, and behavior
/// script. Two worlds with equal fingerprints are byte-identical inputs
/// to the simulator.
pub fn world_fingerprint(world: &World) -> u64 {
    let mut h = Fnv1a::new();
    h.write_f64(world.road.lane_width);
    h.write_u64(world.road.min_lane as u64);
    h.write_u64(world.road.max_lane as u64);
    h.write_f64(world.road.speed_limit);
    let actors = world.actors();
    h.write_u64(actors.len() as u64);
    for a in actors {
        h.write_u64(u64::from(a.id.0));
        h.write(&[match a.kind {
            ActorKind::Car => 1,
            ActorKind::Truck => 2,
            ActorKind::Pedestrian => 3,
        }]);
        h.write_f64(a.size.length);
        h.write_f64(a.size.width);
        h.write_f64(a.size.height);
        h.write_f64(a.pose.position.x);
        h.write_f64(a.pose.position.y);
        h.write_f64(a.pose.heading);
        h.write_f64(a.speed);
        h.write_f64(a.accel);
        match &a.behavior {
            Behavior::Ego => h.write(b"E"),
            Behavior::Parked => h.write(b"P"),
            Behavior::CruiseStraight { speed } => {
                h.write(b"C");
                h.write_f64(*speed);
            }
            Behavior::Waypoints {
                points,
                next,
                on_finish,
            } => {
                h.write(b"W");
                h.write_u64(points.len() as u64);
                for p in points {
                    h.write_f64(p.target.x);
                    h.write_f64(p.target.y);
                    h.write_f64(p.speed);
                }
                h.write_u64(*next as u64);
                h.write(&[match on_finish {
                    OnFinish::Stop => 0,
                    OnFinish::Continue => 1,
                }]);
            }
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "tiny".into(),
            road: Road::default(),
            cruise_kph: 45.0,
            duration: 40.0,
            target: 0,
            actors: vec![ActorTemplate::Lead {
                id: ActorId(1),
                lane: 0,
                x0: Param::Uniform { lo: 40.0, hi: 90.0 },
                speed_kph: Param::Uniform { lo: 15.0, hi: 35.0 },
            }],
        }
    }

    #[test]
    fn sample_is_deterministic_and_seed_sensitive() {
        let spec = tiny_spec();
        spec.validate().unwrap();
        let a = spec.sample(5);
        let b = spec.sample(5);
        let c = spec.sample(6);
        assert_eq!(world_fingerprint(&a.world), world_fingerprint(&b.world));
        assert_ne!(world_fingerprint(&a.world), world_fingerprint(&c.world));
        assert_eq!(a.id, spec.scenario_id());
        assert_eq!(a.target, ActorId(1));
        world_invariants(&a).unwrap();
    }

    #[test]
    fn content_hash_ignores_name_but_not_params() {
        let a = tiny_spec();
        let mut b = a.clone();
        b.name = "renamed".into();
        assert_eq!(a.content_hash(), b.content_hash());
        let mut c = a.clone();
        c.duration = 41.0;
        assert_ne!(a.content_hash(), c.content_hash());
        let mut d = a.clone();
        if let ActorTemplate::Lead { x0, .. } = &mut d.actors[0] {
            *x0 = Param::Uniform { lo: 40.0, hi: 91.0 };
        }
        assert_ne!(a.content_hash(), d.content_hash());
    }

    #[test]
    fn validate_rejects_bad_specs() {
        let mut s = tiny_spec();
        s.actors.clear();
        assert_eq!(s.validate(), Err(SpecError::NoActors));

        let mut s = tiny_spec();
        s.target = 3;
        assert!(matches!(
            s.validate(),
            Err(SpecError::TargetOutOfRange { .. })
        ));

        let mut s = tiny_spec();
        s.actors.push(ActorTemplate::Parked {
            id: ActorId(1),
            lane: -1,
            x0: Param::Fixed(120.0),
        });
        assert_eq!(s.validate(), Err(SpecError::DuplicateActorId(ActorId(1))));

        let mut s = tiny_spec();
        s.actors[0] = ActorTemplate::Lead {
            id: EGO_ID,
            lane: 0,
            x0: Param::Fixed(60.0),
            speed_kph: Param::Fixed(25.0),
        };
        assert_eq!(s.validate(), Err(SpecError::ReservedActorId(EGO_ID)));

        let mut s = tiny_spec();
        s.actors[0] = ActorTemplate::Parked {
            id: ActorId(1),
            lane: 7,
            x0: Param::Fixed(60.0),
        };
        assert!(matches!(
            s.validate(),
            Err(SpecError::LaneOutOfRange { .. })
        ));

        let mut s = tiny_spec();
        s.actors[0] = ActorTemplate::Lead {
            id: ActorId(1),
            lane: 0,
            x0: Param::Uniform {
                lo: 10.0,
                hi: f64::NAN,
            },
            speed_kph: Param::Fixed(25.0),
        };
        assert!(matches!(s.validate(), Err(SpecError::MalformedParam(_))));

        let mut s = tiny_spec();
        s.actors.push(ActorTemplate::OncomingStream {
            first_id: ActorId(10),
            lane: 1,
            count: (5, 2),
            x: Param::Uniform {
                lo: 60.0,
                hi: 240.0,
            },
            speed_kph: Param::Uniform { lo: 20.0, hi: 40.0 },
        });
        assert!(matches!(s.validate(), Err(SpecError::BadCountRange { .. })));

        let mut s = tiny_spec();
        s.actors.push(ActorTemplate::OncomingStream {
            first_id: ActorId(10),
            lane: 1,
            count: (2, MAX_ACTORS + 1),
            x: Param::Uniform {
                lo: 60.0,
                hi: 240.0,
            },
            speed_kph: Param::Uniform { lo: 20.0, hi: 40.0 },
        });
        assert!(matches!(s.validate(), Err(SpecError::BadCountRange { .. })));

        let mut s = tiny_spec();
        s.cruise_kph = -1.0;
        assert_eq!(s.validate(), Err(SpecError::BadRunParams));
    }

    #[test]
    fn stream_id_blocks_collide_with_overlapping_singles() {
        let mut s = tiny_spec();
        s.actors.push(ActorTemplate::OncomingStream {
            first_id: ActorId(10),
            lane: 1,
            count: (2, 4),
            x: Param::Uniform {
                lo: 60.0,
                hi: 240.0,
            },
            speed_kph: Param::Uniform { lo: 20.0, hi: 40.0 },
        });
        // ActorId(12) is inside the stream's maximal id block even though
        // some sampled counts would not reach it.
        s.actors.push(ActorTemplate::Parked {
            id: ActorId(12),
            lane: -1,
            x0: Param::Fixed(150.0),
        });
        assert_eq!(s.validate(), Err(SpecError::DuplicateActorId(ActorId(12))));
    }

    #[test]
    fn invariants_flag_overlap_and_unreachable_targets() {
        // Two cars parked on top of each other in the ego lane.
        let s = ScenarioSpec {
            name: "overlap".into(),
            road: Road::default(),
            cruise_kph: 45.0,
            duration: 30.0,
            target: 0,
            actors: vec![
                ActorTemplate::Parked {
                    id: ActorId(1),
                    lane: -1,
                    x0: Param::Fixed(80.0),
                },
                ActorTemplate::Parked {
                    id: ActorId(2),
                    lane: -1,
                    x0: Param::Fixed(81.0),
                },
            ],
        };
        s.validate().unwrap();
        // Both are parked (heading 0, same y) but one is the target, so
        // the pair is NOT tolerated and the overlap is reported.
        assert!(matches!(
            world_invariants(&s.sample(1)),
            Err(SpecError::OverlappingSpawn(..))
        ));

        let far = ScenarioSpec {
            name: "far".into(),
            road: Road::default(),
            cruise_kph: 10.0,
            duration: 5.0,
            target: 0,
            actors: vec![ActorTemplate::Parked {
                id: ActorId(1),
                lane: -1,
                x0: Param::Fixed(5000.0),
            }],
        };
        assert!(matches!(
            world_invariants(&far.sample(1)),
            Err(SpecError::TargetUnreachable { .. })
        ));

        let behind = ScenarioSpec {
            name: "behind".into(),
            road: Road::default(),
            cruise_kph: 45.0,
            duration: 30.0,
            target: 0,
            actors: vec![ActorTemplate::Trailing {
                id: ActorId(1),
                lane: 0,
                speed_kph: Param::Fixed(25.0),
                x0: Param::Fixed(-30.0),
            }],
        };
        assert!(matches!(
            world_invariants(&behind.sample(1)),
            Err(SpecError::TargetBehindEgo { .. })
        ));
    }

    #[test]
    fn cut_in_scripts_a_merge_into_the_ego_lane() {
        let s = ScenarioSpec {
            name: "cutin".into(),
            road: Road::default(),
            cruise_kph: 45.0,
            duration: 40.0,
            target: 0,
            actors: vec![ActorTemplate::CutIn {
                id: ActorId(1),
                lane: 1,
                x0: Param::Fixed(30.0),
                speed_kph: Param::Fixed(35.0),
                cut_x: Param::Fixed(80.0),
            }],
        };
        s.validate().unwrap();
        let scenario = s.sample(3);
        let actor = scenario.world.actor(ActorId(1)).unwrap();
        assert_eq!(actor.pose.position.y, 3.5);
        match &actor.behavior {
            Behavior::Waypoints {
                points, on_finish, ..
            } => {
                assert_eq!(points.len(), 2);
                assert_eq!(points[0].target.x, 80.0);
                assert_eq!(points[0].target.y, 3.5);
                assert_eq!(points[1].target.x, 80.0 + CUT_MERGE_M);
                assert_eq!(points[1].target.y, 0.0);
                assert_eq!(*on_finish, OnFinish::Continue);
            }
            other => panic!("expected waypoints, got {other:?}"),
        }
    }
}
