//! Property-based tests for the scenario generator: sampling determinism,
//! mutation closure, content-hash stability, and validity rejection over
//! hostile parameter ranges.

use av_scenarios::{
    ds, mutate, world_fingerprint, world_invariants, MutateConfig, Param, ScenarioSpec,
};
use av_simkit::rng::run_rng;
use proptest::prelude::*;

/// Any of the five DS spec re-expressions.
fn arb_ds_spec() -> impl Strategy<Value = ScenarioSpec> {
    (0usize..5).prop_map(|i| ds::all()[i].clone())
}

/// A spec reachable by the search: a DS root pushed through up to 6
/// seeded mutation steps (the exact population the driver explores).
fn arb_mutated_spec() -> impl Strategy<Value = ScenarioSpec> {
    (arb_ds_spec(), any::<u64>(), 0usize..6).prop_map(|(root, seed, steps)| {
        let mut rng = run_rng(seed, 0x7E57);
        let cfg = MutateConfig::default();
        let mut spec = root;
        for _ in 0..steps {
            spec = mutate(&spec, &mut rng, &cfg);
        }
        spec
    })
}

proptest! {
    /// Same spec + same seed → byte-identical world, however often it is
    /// sampled. This is the contract that makes `ScenarioId::Gen` a cache
    /// key: the content hash plus a seed pins the world bit-for-bit.
    #[test]
    fn sampling_is_deterministic(spec in arb_mutated_spec(), seed in any::<u64>()) {
        let a = spec.sample(seed);
        let b = spec.sample(seed);
        prop_assert_eq!(world_fingerprint(&a.world), world_fingerprint(&b.world));
        prop_assert_eq!(a.id, b.id);
        prop_assert_eq!(a.duration.to_bits(), b.duration.to_bits());
        prop_assert_eq!(a.cruise_speed.to_bits(), b.cruise_speed.to_bits());
        prop_assert_eq!(a.target, b.target);
    }

    /// The content hash is a pure function of the spec — and `name` is
    /// explicitly excluded (report labels must not change identities).
    #[test]
    fn content_hash_ignores_name(spec in arb_mutated_spec(), tag in any::<u64>()) {
        let mut renamed = spec.clone();
        renamed.name = format!("renamed-{tag:x}");
        prop_assert_eq!(spec.content_hash(), renamed.content_hash());
        prop_assert_eq!(spec.content_hash(), spec.clone().content_hash());
    }

    /// Mutation closure: every spec the search's step operator can reach
    /// from a DS root stays valid — spec-level validation passes and the
    /// sampled world satisfies the world invariants at any seed.
    #[test]
    fn mutants_of_ds_roots_stay_valid(spec in arb_mutated_spec(), seed in any::<u64>()) {
        prop_assert!(spec.validate().is_ok(), "validate: {:?}", spec.validate());
        let world = spec.sample(seed);
        prop_assert!(
            world_invariants(&world).is_ok(),
            "world invariants: {:?}",
            world_invariants(&world)
        );
    }

    /// Hostile run parameters never slip through validation: non-finite or
    /// non-positive cruise/duration values are rejected, not sampled.
    #[test]
    fn hostile_run_params_are_rejected(
        spec in arb_ds_spec(),
        cruise in prop_oneof![
            Just(f64::NAN), Just(f64::INFINITY), Just(f64::NEG_INFINITY),
            Just(0.0f64), -1000.0..0.0f64,
        ],
    ) {
        let mut bad = spec.clone();
        bad.cruise_kph = cruise;
        prop_assert!(bad.validate().is_err());

        let mut bad = spec;
        bad.duration = cruise;
        prop_assert!(bad.validate().is_err());
    }

    /// Hostile `Param` ranges are caught by well-formedness: reversed or
    /// non-finite bounds make the owning spec invalid.
    #[test]
    fn hostile_param_ranges_are_rejected(
        spec in arb_ds_spec(),
        lo in prop_oneof![Just(f64::NAN), Just(f64::INFINITY), 10.0..100.0f64],
        hi in -100.0..0.0f64,
    ) {
        let bad_param = Param::Uniform { lo, hi };
        prop_assert!(!bad_param.is_well_formed(), "lo={lo} hi={hi}");

        // Splice the hostile param into the first actor's first knob slot
        // via a targeted rebuild: a Lead/Crossing/... template with a bad
        // x0 must fail validation.
        let mut bad = spec;
        use av_scenarios::ActorTemplate as T;
        let first = bad.actors[0].clone();
        bad.actors[0] = match first {
            T::Lead { id, lane, speed_kph, .. } => T::Lead { id, lane, x0: bad_param, speed_kph },
            T::Crossing { id, from_y, to_y, walk, .. } =>
                T::Crossing { id, x0: bad_param, from_y, to_y, walk },
            T::Parked { id, lane, .. } => T::Parked { id, lane, x0: bad_param },
            T::Approaching { id, y, walk_dist, walk, .. } =>
                T::Approaching { id, y, x0: bad_param, walk_dist, walk },
            T::OncomingStream { first_id, lane, count, speed_kph, .. } =>
                T::OncomingStream { first_id, lane, count, x: bad_param, speed_kph },
            T::Trailing { id, lane, speed_kph, .. } =>
                T::Trailing { id, lane, speed_kph, x0: bad_param },
            T::CutIn { id, lane, speed_kph, cut_x, .. } =>
                T::CutIn { id, lane, x0: bad_param, speed_kph, cut_x },
        };
        prop_assert!(bad.validate().is_err());
    }

    /// Mutation determinism: a given RNG state yields exactly one mutant,
    /// and the parent is never modified in place.
    #[test]
    fn mutation_is_deterministic(spec in arb_ds_spec(), seed in any::<u64>()) {
        let cfg = MutateConfig::default();
        let before = spec.clone();
        let a = mutate(&spec, &mut run_rng(seed, 0x7E57), &cfg);
        let b = mutate(&spec, &mut run_rng(seed, 0x7E57), &cfg);
        prop_assert_eq!(&spec, &before, "parent untouched");
        prop_assert_eq!(a.content_hash(), b.content_hash());
        prop_assert_eq!(a, b);
    }
}
