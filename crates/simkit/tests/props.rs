//! Property-based tests for the simulator substrate.

use av_simkit::actor::{separation, Actor, ActorId, ActorKind};
use av_simkit::behavior::{Behavior, OnFinish, Waypoint};
use av_simkit::math::{clamp, interval_overlap, Pose, Vec2};
use av_simkit::rng::{exponential, mix, normal};
use av_simkit::scheduler::Scheduler;
use proptest::prelude::*;
use rand::SeedableRng;

fn finite() -> impl Strategy<Value = f64> {
    -1e6..1e6f64
}

proptest! {
    #[test]
    fn vec2_triangle_inequality(ax in finite(), ay in finite(), bx in finite(), by in finite()) {
        let a = Vec2::new(ax, ay);
        let b = Vec2::new(bx, by);
        prop_assert!((a + b).norm() <= a.norm() + b.norm() + 1e-6);
    }

    #[test]
    fn vec2_normalized_is_unit_or_zero(x in finite(), y in finite()) {
        let n = Vec2::new(x, y).normalized().norm();
        prop_assert!(n < 1e-9 || (n - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lerp_stays_between_endpoints(x0 in finite(), x1 in finite(), t in 0.0..1.0f64) {
        let a = Vec2::new(x0, 0.0);
        let b = Vec2::new(x1, 0.0);
        let l = a.lerp(b, t).x;
        prop_assert!(l >= x0.min(x1) - 1e-6 && l <= x0.max(x1) + 1e-6);
    }

    #[test]
    fn clamp_is_idempotent_and_bounded(v in finite(), lo in -100.0..0.0f64, hi in 0.0..100.0f64) {
        let c = clamp(v, lo, hi);
        prop_assert!(c >= lo && c <= hi);
        prop_assert_eq!(clamp(c, lo, hi), c);
    }

    #[test]
    fn interval_overlap_symmetric_and_bounded(
        a0 in finite(), a1 in finite(), b0 in finite(), b1 in finite()
    ) {
        let o1 = interval_overlap(a0, a1, b0, b1);
        let o2 = interval_overlap(b0, b1, a0, a1);
        prop_assert!((o1 - o2).abs() < 1e-9, "symmetric");
        prop_assert!(o1 >= 0.0);
        prop_assert!(o1 <= (a1 - a0).abs() + 1e-9);
        prop_assert!(o1 <= (b1 - b0).abs() + 1e-9);
    }

    #[test]
    fn separation_is_symmetric_and_nonnegative(
        ax in -200.0..200.0f64, ay in -10.0..10.0f64,
        bx in -200.0..200.0f64, by in -10.0..10.0f64,
        ha in 0.0..std::f64::consts::TAU,
    ) {
        let mut a = Actor::new(ActorId(1), ActorKind::Car, Vec2::new(ax, ay), 0.0, Behavior::Parked);
        a.pose.heading = ha;
        let b = Actor::new(ActorId(2), ActorKind::Pedestrian, Vec2::new(bx, by), 0.0, Behavior::Parked);
        let s1 = separation(&a, &b);
        let s2 = separation(&b, &a);
        prop_assert!((s1 - s2).abs() < 1e-9);
        prop_assert!(s1 >= 0.0);
        // Never farther than the center distance.
        prop_assert!(s1 <= a.pose.position.distance(b.pose.position) + 1e-9);
    }

    #[test]
    fn waypoint_walker_reaches_target(
        tx in -50.0..50.0f64, ty in -50.0..50.0f64, speed in 0.5..10.0f64
    ) {
        let mut b = Behavior::waypoints(
            vec![Waypoint::new(Vec2::new(tx, ty), speed)],
            OnFinish::Stop,
        );
        let mut pose = Pose::new(Vec2::ZERO, 0.0);
        let mut v = 0.0;
        // Enough steps to cover the farthest target at the slowest speed.
        for _ in 0..((150.0 / speed / 0.1) as usize + 10) {
            let (p, s) = b.step(pose, v, 0.1);
            pose = p;
            v = s;
        }
        prop_assert!(pose.position.distance(Vec2::new(tx, ty)) < 1e-6);
        prop_assert_eq!(v, 0.0);
    }

    #[test]
    fn scheduler_fire_count_matches_rate(period in 1u64..1000, horizon in 1u64..100_000) {
        let mut s = Scheduler::new();
        let t = s.add_task("t", period);
        let mut fired = 0u64;
        let mut now = 0;
        while now <= horizon {
            fired += s.advance_to(now).iter().filter(|&&x| x == t).count() as u64;
            now += period; // visit exactly the fire instants
        }
        prop_assert_eq!(fired, horizon / period + 1);
    }

    #[test]
    fn mix_is_deterministic_and_spreads(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(mix(a, b), mix(a, b));
        // Changing one input changes the output (overwhelmingly likely).
        prop_assert_ne!(mix(a, b), mix(a, b.wrapping_add(1)));
    }

    #[test]
    fn normal_samples_are_finite(seed in any::<u64>(), mean in -100.0..100.0f64, sd in 0.0..50.0f64) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = normal(&mut rng, mean, sd);
        prop_assert!(x.is_finite());
    }

    #[test]
    fn exponential_respects_location(seed in any::<u64>(), loc in -5.0..5.0f64, lambda in 0.01..5.0f64) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let x = exponential(&mut rng, loc, lambda);
        prop_assert!(x >= loc);
        prop_assert!(x.is_finite());
    }
}
