//! # av-simkit — deterministic plan-view driving simulator
//!
//! This crate is the LGSVL substitute used by the RoboTack reproduction
//! (see `DESIGN.md` at the repository root). It models a straight multi-lane
//! road in a 2-D plan view: **x is longitudinal** (direction of travel) and
//! **y is lateral**. It provides:
//!
//! - [`math`]: small geometry/kinematics helpers ([`math::Vec2`]).
//! - [`units`]: kph/mps conversions and common constants.
//! - [`rng`]: seeded random sampling (normal / exponential) used by every
//!   stochastic model in the workspace, so runs are reproducible.
//! - [`actor`] and [`behavior`]: scripted road users (vehicles, pedestrians).
//! - [`road`] and [`world`]: the world model plus ground-truth queries
//!   (in-path gap, closest object) used by the safety model.
//! - [`scheduler`]: a multi-rate scheduler replicating the paper's sensor
//!   rates (camera 15 Hz, LiDAR 10 Hz, GPS 12.5 Hz, planner 10 Hz).
//! - [`scenario`]: the five driving scenarios DS-1..DS-5 from §V-C.
//! - [`recorder`]: per-run time-series capture for the evaluation.
//!
//! # Example
//!
//! ```
//! use av_simkit::scenario::{Scenario, ScenarioId};
//!
//! let mut world = Scenario::build(ScenarioId::Ds1, 42).into_world();
//! // Advance 1 s of simulated time with the ego coasting.
//! for _ in 0..30 {
//!     world.step(1.0 / 30.0, 0.0);
//! }
//! assert!(world.ego().pose.position.x > 0.0);
//! ```

#![warn(missing_docs)]

pub mod actor;
pub mod batch_world;
pub mod behavior;
pub mod error;
pub mod math;
pub mod recorder;
pub mod rng;
pub mod road;
pub mod scenario;
pub mod scheduler;
pub mod units;
pub mod world;

pub use actor::{Actor, ActorId, ActorKind, Size};
pub use batch_world::BatchWorld;
pub use error::SimError;
pub use math::Vec2;
pub use recorder::RunRecord;
pub use road::Road;
pub use scenario::{Scenario, ScenarioId};
pub use scheduler::{Scheduler, Task};
pub use world::World;
