//! Plan-view geometry and small numeric helpers.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 2-D vector in road coordinates: `x` longitudinal, `y` lateral (meters).
///
/// ```
/// use av_simkit::math::Vec2;
/// let v = Vec2::new(3.0, 4.0);
/// assert_eq!(v.norm(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// Longitudinal component (meters).
    pub x: f64,
    /// Lateral component (meters).
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from its components.
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean norm (avoids the square root).
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product with `other`.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Distance to `other`.
    pub fn distance(self, other: Vec2) -> f64 {
        (self - other).norm()
    }

    /// Unit vector in the same direction, or zero if the norm is ~0.
    pub fn normalized(self) -> Vec2 {
        let n = self.norm();
        if n < 1e-12 {
            Vec2::ZERO
        } else {
            self / n
        }
    }

    /// Component-wise linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

/// A pose in the plan view: position plus heading (radians, 0 = +x).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Pose {
    /// Position in road coordinates (meters).
    pub position: Vec2,
    /// Heading angle in radians; `0` points down the road (+x).
    pub heading: f64,
}

impl Pose {
    /// Creates a pose from a position and heading.
    pub fn new(position: Vec2, heading: f64) -> Self {
        Pose { position, heading }
    }

    /// Unit vector pointing along the heading.
    pub fn forward(self) -> Vec2 {
        Vec2::new(self.heading.cos(), self.heading.sin())
    }
}

/// Clamps `v` into `[lo, hi]`.
///
/// # Panics
///
/// Panics in debug builds if `lo > hi`.
pub fn clamp(v: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi, "clamp: lo {lo} > hi {hi}");
    v.max(lo).min(hi)
}

/// Returns `true` when `a` and `b` differ by at most `tol`.
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

/// One-dimensional interval overlap length between `[a0, a1]` and `[b0, b1]`.
///
/// Returns 0 when the intervals are disjoint. The inputs need not be ordered.
pub fn interval_overlap(a0: f64, a1: f64, b0: f64, b1: f64) -> f64 {
    let (a0, a1) = if a0 <= a1 { (a0, a1) } else { (a1, a0) };
    let (b0, b1) = if b0 <= b1 { (b0, b1) } else { (b1, b0) };
    (a1.min(b1) - a0.max(b0)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec2_arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(b / 2.0, Vec2::new(1.5, -0.5));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
    }

    #[test]
    fn vec2_norm_and_dot() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.norm_sq(), 25.0);
        assert_eq!(v.dot(Vec2::new(1.0, 0.0)), 3.0);
    }

    #[test]
    fn vec2_normalized_zero_is_zero() {
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
        let u = Vec2::new(0.0, -2.0).normalized();
        assert!(approx_eq(u.y, -1.0, 1e-12));
    }

    #[test]
    fn vec2_lerp_endpoints() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(10.0, -4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(5.0, -2.0));
    }

    #[test]
    fn pose_forward() {
        let p = Pose::new(Vec2::ZERO, 0.0);
        assert!(approx_eq(p.forward().x, 1.0, 1e-12));
        let q = Pose::new(Vec2::ZERO, std::f64::consts::FRAC_PI_2);
        assert!(approx_eq(q.forward().y, 1.0, 1e-12));
    }

    #[test]
    fn clamp_bounds() {
        assert_eq!(clamp(5.0, 0.0, 1.0), 1.0);
        assert_eq!(clamp(-5.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp(0.5, 0.0, 1.0), 0.5);
    }

    #[test]
    fn interval_overlap_cases() {
        assert_eq!(interval_overlap(0.0, 2.0, 1.0, 3.0), 1.0);
        assert_eq!(interval_overlap(0.0, 1.0, 2.0, 3.0), 0.0);
        // Unordered inputs are normalized.
        assert_eq!(interval_overlap(2.0, 0.0, 3.0, 1.0), 1.0);
        // Containment.
        assert_eq!(interval_overlap(0.0, 10.0, 2.0, 3.0), 1.0);
    }
}
