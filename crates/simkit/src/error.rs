//! Error types for the simulator.

use crate::actor::ActorId;

/// Errors produced by simulator operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// An actor id was not found in the world.
    UnknownActor(ActorId),
    /// An actor id was inserted twice.
    DuplicateActor(ActorId),
    /// The world has no ego vehicle configured.
    NoEgo,
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnknownActor(id) => write!(f, "unknown actor {id}"),
            SimError::DuplicateActor(id) => write!(f, "duplicate actor {id}"),
            SimError::NoEgo => write!(f, "world has no ego vehicle"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let msgs = [
            SimError::UnknownActor(ActorId(3)).to_string(),
            SimError::DuplicateActor(ActorId(1)).to_string(),
            SimError::NoEgo.to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }
}
