//! The simulated world: actors plus ground-truth queries.

use crate::actor::{separation, Actor, ActorId};
use crate::behavior::Behavior;
use crate::error::SimError;
use crate::math::{interval_overlap, Vec2};
use crate::road::Road;
use serde::{Deserialize, Serialize};

/// Ground-truth description of the nearest in-path obstacle, used by the
/// safety model (Defs. 3–5) and to label the safety-hijacker training data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InPathObstacle {
    /// Which actor is in the ego's path.
    pub id: ActorId,
    /// Bumper-to-bumper longitudinal gap in meters (clamped at 0).
    pub gap: f64,
    /// Longitudinal closing speed (> 0 means the gap is shrinking).
    pub closing_speed: f64,
}

/// The plan-view world: a road plus a set of actors, one of which is the ego.
///
/// Non-ego actors follow their [`Behavior`] scripts; the ego is integrated
/// from the longitudinal acceleration command supplied to [`World::step`]
/// (the paper's attacks and safety model are longitudinal-only, §II-C).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct World {
    /// Road geometry.
    pub road: Road,
    time_us: u64,
    actors: Vec<Actor>,
    ego_index: usize,
}

impl World {
    /// Creates a world containing only the ego vehicle.
    ///
    /// The ego's behavior is forced to [`Behavior::Ego`].
    pub fn new(road: Road, mut ego: Actor) -> Self {
        ego.behavior = Behavior::Ego;
        World {
            road,
            time_us: 0,
            actors: vec![ego],
            ego_index: 0,
        }
    }

    /// Adds a non-ego actor.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DuplicateActor`] if the id is already present.
    pub fn add_actor(&mut self, actor: Actor) -> Result<(), SimError> {
        if self.actors.iter().any(|a| a.id == actor.id) {
            return Err(SimError::DuplicateActor(actor.id));
        }
        self.actors.push(actor);
        Ok(())
    }

    /// Current simulation time in seconds.
    pub fn time(&self) -> f64 {
        self.time_us as f64 * 1e-6
    }

    /// Current simulation time in integer microseconds.
    pub fn time_us(&self) -> u64 {
        self.time_us
    }

    /// The ego vehicle.
    pub fn ego(&self) -> &Actor {
        &self.actors[self.ego_index]
    }

    /// Mutable access to the ego vehicle (used by tests and scenario setup).
    pub fn ego_mut(&mut self) -> &mut Actor {
        &mut self.actors[self.ego_index]
    }

    /// Looks up an actor by id.
    pub fn actor(&self, id: ActorId) -> Option<&Actor> {
        self.actors.iter().find(|a| a.id == id)
    }

    /// All actors, ego included.
    pub fn actors(&self) -> &[Actor] {
        &self.actors
    }

    /// All non-ego actors.
    pub fn others(&self) -> impl Iterator<Item = &Actor> {
        let ego = self.ego().id;
        self.actors.iter().filter(move |a| a.id != ego)
    }

    /// Advances the world by `dt` seconds with the given ego longitudinal
    /// acceleration command (m/s²; braking is negative). The ego's speed is
    /// clamped at zero — the ADS never reverses in these scenarios.
    pub fn step(&mut self, dt: f64, ego_accel: f64) {
        for actor in &mut self.actors {
            if matches!(actor.behavior, Behavior::Ego) {
                let v0 = actor.speed;
                let v1 = (v0 + ego_accel * dt).max(0.0);
                // Trapezoidal integration with the clamped speed.
                actor.pose.position.x += (v0 + v1) / 2.0 * dt;
                actor.accel = (v1 - v0) / dt;
                actor.speed = v1;
            } else {
                let mut behavior = actor.behavior.clone();
                let (pose, speed) = behavior.step(actor.pose, actor.speed, dt);
                actor.accel = (speed - actor.speed) / dt;
                actor.pose = pose;
                actor.speed = speed;
                actor.behavior = behavior;
            }
        }
        self.time_us += (dt * 1e6).round() as u64;
    }

    /// All actors, mutably — for [`crate::batch_world::BatchWorld`]'s
    /// scatter step only; everything else goes through [`World::step`].
    pub(crate) fn actors_slice_mut(&mut self) -> &mut [Actor] {
        &mut self.actors
    }

    /// Advances the clock exactly as [`World::step`] does, without moving
    /// any actor — for [`crate::batch_world::BatchWorld`], which integrates
    /// the kinematics itself.
    pub(crate) fn advance_time(&mut self, dt: f64) {
        self.time_us += (dt * 1e6).round() as u64;
    }

    /// The corridor the ego sweeps: lateral interval `[y0, y1]` covering the
    /// ego width plus `margin` on each side.
    pub fn ego_corridor(&self, margin: f64) -> (f64, f64) {
        let ego = self.ego();
        let hy = ego.half_extents().y + margin;
        (ego.pose.position.y - hy, ego.pose.position.y + hy)
    }

    /// Ground truth: the nearest actor ahead of the ego whose footprint
    /// overlaps the ego corridor (with `margin` meters of slack per side).
    ///
    /// `gap` is bumper-to-bumper and clamped at 0 (overlap = imminent
    /// contact). Returns `None` when the path is clear.
    pub fn in_path_obstacle(&self, margin: f64) -> Option<InPathObstacle> {
        let ego = self.ego();
        let (cy0, cy1) = self.ego_corridor(margin);
        let ego_front = ego.longitudinal_extent().1;
        let ego_vx = ego.velocity().x;
        let mut best: Option<InPathObstacle> = None;
        for other in self.others() {
            let (oy0, oy1) = other.lateral_extent();
            if interval_overlap(cy0, cy1, oy0, oy1) <= 0.0 {
                continue;
            }
            let (ox0, ox1) = other.longitudinal_extent();
            if ox1 < ego_front {
                continue; // fully behind the front bumper
            }
            let gap = (ox0 - ego_front).max(0.0);
            let closing = ego_vx - other.velocity().x;
            if best.is_none_or(|b| gap < b.gap) {
                best = Some(InPathObstacle {
                    id: other.id,
                    gap,
                    closing_speed: closing,
                });
            }
        }
        best
    }

    /// Ground truth separation between the ego and a specific actor.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownActor`] for an unknown id.
    pub fn separation_to_ego(&self, id: ActorId) -> Result<f64, SimError> {
        let other = self.actor(id).ok_or(SimError::UnknownActor(id))?;
        Ok(separation(self.ego(), other))
    }

    /// Smallest separation between the ego and any other actor
    /// (`f64::INFINITY` when the ego is alone).
    pub fn min_separation_to_ego(&self) -> f64 {
        let ego = self.ego();
        self.others()
            .map(|o| separation(ego, o))
            .fold(f64::INFINITY, f64::min)
    }

    /// Relative velocity of `id` with respect to the ego (other − ego).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownActor`] for an unknown id.
    pub fn relative_velocity(&self, id: ActorId) -> Result<Vec2, SimError> {
        let other = self.actor(id).ok_or(SimError::UnknownActor(id))?;
        Ok(other.velocity() - self.ego().velocity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::ActorKind;

    fn world_with(actors: Vec<Actor>) -> World {
        let ego = Actor::new(ActorId(0), ActorKind::Car, Vec2::ZERO, 10.0, Behavior::Ego);
        let mut w = World::new(Road::default(), ego);
        for a in actors {
            w.add_actor(a).unwrap();
        }
        w
    }

    fn cruiser(id: u32, x: f64, y: f64, speed: f64) -> Actor {
        Actor::new(
            ActorId(id),
            ActorKind::Car,
            Vec2::new(x, y),
            speed,
            Behavior::CruiseStraight { speed },
        )
    }

    #[test]
    fn ego_integrates_acceleration() {
        let mut w = world_with(vec![]);
        w.step(1.0, 2.0);
        assert!((w.ego().speed - 12.0).abs() < 1e-9);
        assert!((w.ego().pose.position.x - 11.0).abs() < 1e-9);
    }

    #[test]
    fn ego_speed_clamps_at_zero() {
        let mut w = world_with(vec![]);
        w.step(3.0, -20.0);
        assert_eq!(w.ego().speed, 0.0);
    }

    #[test]
    fn duplicate_actor_rejected() {
        let mut w = world_with(vec![cruiser(1, 10.0, 0.0, 5.0)]);
        let err = w.add_actor(cruiser(1, 20.0, 0.0, 5.0)).unwrap_err();
        assert_eq!(err, SimError::DuplicateActor(ActorId(1)));
    }

    #[test]
    fn in_path_obstacle_finds_nearest_in_lane() {
        let w = world_with(vec![
            cruiser(1, 40.0, 0.0, 5.0),
            cruiser(2, 20.0, 0.0, 5.0),
            cruiser(3, 10.0, 3.5, 5.0), // adjacent lane, ignored
        ]);
        let o = w.in_path_obstacle(0.3).unwrap();
        assert_eq!(o.id, ActorId(2));
        // 20 m center-to-center minus two half-lengths.
        assert!((o.gap - (20.0 - 4.6)).abs() < 1e-9);
        assert!((o.closing_speed - 5.0).abs() < 1e-9);
    }

    #[test]
    fn in_path_obstacle_ignores_behind() {
        let w = world_with(vec![cruiser(1, -10.0, 0.0, 5.0)]);
        assert!(w.in_path_obstacle(0.3).is_none());
    }

    #[test]
    fn in_path_gap_clamps_at_zero_when_overlapping() {
        let w = world_with(vec![cruiser(1, 4.0, 0.0, 5.0)]);
        let o = w.in_path_obstacle(0.3).unwrap();
        assert_eq!(o.gap, 0.0);
    }

    #[test]
    fn separation_and_relative_velocity() {
        let w = world_with(vec![cruiser(1, 30.0, 0.0, 4.0)]);
        let sep = w.separation_to_ego(ActorId(1)).unwrap();
        assert!((sep - (30.0 - 4.6)).abs() < 1e-9);
        let rv = w.relative_velocity(ActorId(1)).unwrap();
        assert!((rv.x + 6.0).abs() < 1e-9);
        assert!(w.relative_velocity(ActorId(9)).is_err());
    }

    #[test]
    fn min_separation_without_others_is_infinite() {
        let w = world_with(vec![]);
        assert!(w.min_separation_to_ego().is_infinite());
    }

    #[test]
    fn time_advances_in_microseconds() {
        let mut w = world_with(vec![]);
        for _ in 0..30 {
            w.step(1.0 / 30.0, 0.0);
        }
        assert!((w.time() - 1.0).abs() < 1e-4);
    }
}
