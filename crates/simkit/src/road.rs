//! Road geometry: a straight multi-lane street in plan view.

use serde::{Deserialize, Serialize};

/// A straight road along +x with parallel lanes.
///
/// Lane indices are signed: lane `0` is the ego lane (centered at `y = 0`),
/// positive indices are to the left (+y), negative to the right (−y). The
/// default layout mirrors the paper's "Borregas Avenue" scenarios: the ego
/// lane, one adjacent traffic lane to the left, and a parking lane to the
/// right (§V-C).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Road {
    /// Width of every lane in meters.
    pub lane_width: f64,
    /// Smallest lane index (most negative, right-most lane).
    pub min_lane: i32,
    /// Largest lane index (left-most lane).
    pub max_lane: i32,
    /// Posted speed limit (m/s). Borregas Avenue is 50 kph.
    pub speed_limit: f64,
}

impl Default for Road {
    fn default() -> Self {
        Road {
            lane_width: 3.5,
            min_lane: -1, // parking lane
            max_lane: 1,  // adjacent traffic lane
            speed_limit: 50.0 / 3.6,
        }
    }
}

impl Road {
    /// Lateral center (y) of lane `index`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `index` is outside `[min_lane, max_lane]`.
    pub fn lane_center(&self, index: i32) -> f64 {
        debug_assert!(
            (self.min_lane..=self.max_lane).contains(&index),
            "lane {index} outside [{}, {}]",
            self.min_lane,
            self.max_lane
        );
        f64::from(index) * self.lane_width
    }

    /// The lane index whose center is closest to lateral position `y`
    /// (clamped to the existing lanes).
    pub fn lane_at(&self, y: f64) -> i32 {
        let idx = (y / self.lane_width).round() as i32;
        idx.clamp(self.min_lane, self.max_lane)
    }

    /// Whether the lateral interval `[y0, y1]` overlaps lane `index`.
    pub fn overlaps_lane(&self, index: i32, y0: f64, y1: f64) -> bool {
        let c = self.lane_center(index);
        let half = self.lane_width / 2.0;
        crate::math::interval_overlap(y0, y1, c - half, c + half) > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_centers() {
        let r = Road::default();
        assert_eq!(r.lane_center(0), 0.0);
        assert_eq!(r.lane_center(1), 3.5);
        assert_eq!(r.lane_center(-1), -3.5);
    }

    #[test]
    fn lane_at_rounds_and_clamps() {
        let r = Road::default();
        assert_eq!(r.lane_at(0.4), 0);
        assert_eq!(r.lane_at(2.0), 1);
        assert_eq!(r.lane_at(-9.0), -1);
        assert_eq!(r.lane_at(9.0), 1);
    }

    #[test]
    fn overlaps_lane_edges() {
        let r = Road::default();
        assert!(r.overlaps_lane(0, -0.5, 0.5));
        assert!(!r.overlaps_lane(0, 2.0, 3.0));
        assert!(r.overlaps_lane(1, 1.76, 2.0));
    }
}
