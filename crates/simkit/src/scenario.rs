//! The five driving scenarios of §V-C, rebuilt on the plan-view world.
//!
//! All scenarios play out on a straight 3-lane road (ego lane, one adjacent
//! traffic lane to the left, a parking lane to the right) with a 50 kph limit,
//! mirroring the paper's Borregas Avenue setup. The ego cruises at 45 kph
//! unless the scenario says otherwise.

use crate::actor::{Actor, ActorId, ActorKind};
use crate::behavior::{Behavior, OnFinish, Waypoint};
use crate::math::Vec2;
use crate::rng;
use crate::road::Road;
use crate::units::kph_to_mps;
use crate::world::World;
use serde::{Deserialize, Serialize};

/// Identifier of a driving scenario from the paper (§V-C, Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioId {
    /// DS-1: ego follows a slower target vehicle in its lane.
    Ds1,
    /// DS-2: a pedestrian illegally crosses the street ahead of the ego.
    Ds2,
    /// DS-3: a target vehicle is parked in the parking lane.
    Ds3,
    /// DS-4: a pedestrian walks toward the ego in the parking lane, then stops.
    Ds4,
    /// DS-5: DS-1 plus random traffic — the random-attack baseline scenario.
    Ds5,
}

impl ScenarioId {
    /// All five scenarios, in paper order.
    pub const ALL: [ScenarioId; 5] = [
        ScenarioId::Ds1,
        ScenarioId::Ds2,
        ScenarioId::Ds3,
        ScenarioId::Ds4,
        ScenarioId::Ds5,
    ];

    /// The paper's name for the scenario.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioId::Ds1 => "DS-1",
            ScenarioId::Ds2 => "DS-2",
            ScenarioId::Ds3 => "DS-3",
            ScenarioId::Ds4 => "DS-4",
            ScenarioId::Ds5 => "DS-5",
        }
    }

    /// Whether the scenario's target object is a pedestrian.
    pub fn target_is_pedestrian(self) -> bool {
        matches!(self, ScenarioId::Ds2 | ScenarioId::Ds4)
    }
}

impl std::fmt::Display for ScenarioId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully built scenario: the initial world plus run metadata.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Which scenario this is.
    pub id: ScenarioId,
    /// The initial world state.
    pub world: World,
    /// The scripted target object (the paper's "TO"/"TV").
    pub target: ActorId,
    /// The ego's cruise speed for the run (m/s).
    pub cruise_speed: f64,
    /// Nominal duration of the run in seconds.
    pub duration: f64,
}

/// The actor id reserved for the ego vehicle in every scenario.
pub const EGO_ID: ActorId = ActorId(0);
/// The actor id reserved for the scripted target object in every scenario.
pub const TARGET_ID: ActorId = ActorId(1);

impl Scenario {
    /// Builds scenario `id`. `seed` randomizes the DS-5 traffic and adds
    /// small per-run jitter to initial positions (±2 m longitudinal), so
    /// campaigns explore slightly different interaction timings, like the
    /// paper's 150–200 runs per campaign do.
    pub fn build(id: ScenarioId, seed: u64) -> Scenario {
        let mut rng = rng::run_rng(seed, 0xD5);
        let road = Road::default();
        let cruise = kph_to_mps(45.0);
        let jitter = |rng: &mut rand::rngs::StdRng| rng.random_range(-2.0..2.0);

        let ego = Actor::new(
            EGO_ID,
            ActorKind::Car,
            Vec2::new(0.0, 0.0),
            cruise,
            Behavior::Ego,
        );
        let mut world = World::new(road, ego);

        let (target, duration) = match id {
            ScenarioId::Ds1 => {
                let v_tv = kph_to_mps(25.0);
                let x0 = 60.0 + jitter(&mut rng);
                let tv = Actor::new(
                    TARGET_ID,
                    ActorKind::Car,
                    Vec2::new(x0, 0.0),
                    v_tv,
                    Behavior::CruiseStraight { speed: v_tv },
                );
                world.add_actor(tv).expect("fresh world");
                (TARGET_ID, 45.0)
            }
            ScenarioId::Ds2 => {
                let x0 = 70.0 + jitter(&mut rng);
                let walk = 1.4;
                let ped = Actor::new(
                    TARGET_ID,
                    ActorKind::Pedestrian,
                    Vec2::new(x0, -6.5),
                    walk,
                    Behavior::waypoints(
                        vec![Waypoint::new(Vec2::new(x0, 6.5), walk)],
                        OnFinish::Stop,
                    ),
                );
                world.add_actor(ped).expect("fresh world");
                (TARGET_ID, 30.0)
            }
            ScenarioId::Ds3 => {
                let x0 = 90.0 + jitter(&mut rng);
                let tv = Actor::new(
                    TARGET_ID,
                    ActorKind::Car,
                    Vec2::new(x0, -3.5),
                    0.0,
                    Behavior::Parked,
                );
                world.add_actor(tv).expect("fresh world");
                (TARGET_ID, 20.0)
            }
            ScenarioId::Ds4 => {
                let x0 = 95.0 + jitter(&mut rng);
                let walk = 1.4;
                let ped = Actor::new(
                    TARGET_ID,
                    ActorKind::Pedestrian,
                    Vec2::new(x0, -3.3),
                    walk,
                    Behavior::waypoints(
                        vec![Waypoint::new(Vec2::new(x0 - 5.0, -3.3), walk)],
                        OnFinish::Stop,
                    ),
                );
                world.add_actor(ped).expect("fresh world");
                (TARGET_ID, 25.0)
            }
            ScenarioId::Ds5 => {
                let v_tv = kph_to_mps(25.0);
                let x0 = 60.0 + jitter(&mut rng);
                let tv = Actor::new(
                    TARGET_ID,
                    ActorKind::Car,
                    Vec2::new(x0, 0.0),
                    v_tv,
                    Behavior::CruiseStraight { speed: v_tv },
                );
                world.add_actor(tv).expect("fresh world");
                // Oncoming traffic in the adjacent lane plus a trailing car,
                // with randomized speeds and positions (§V-C: "random
                // waypoints and trajectories"). The lead-most oncoming car
                // (smallest x) gets the highest speed so same-lane NPCs
                // never drive through each other (no NPC-NPC collision
                // model in the plan-view world).
                let n_oncoming = rng.random_range(2..=4usize);
                let mut xs: Vec<f64> = (0..n_oncoming)
                    .map(|_| rng.random_range(60.0..240.0))
                    .collect();
                let mut vs: Vec<f64> = (0..n_oncoming)
                    .map(|_| kph_to_mps(rng.random_range(20.0..40.0)))
                    .collect();
                xs.sort_by(|a, b| a.total_cmp(b));
                vs.sort_by(|a, b| b.total_cmp(a));
                for (i, (x, v)) in xs.into_iter().zip(vs).enumerate() {
                    let mut npc = Actor::new(
                        ActorId(10 + i as u32),
                        ActorKind::Car,
                        Vec2::new(x, 3.5),
                        v,
                        Behavior::CruiseStraight { speed: v },
                    );
                    npc.pose.heading = std::f64::consts::PI; // oncoming
                    world.add_actor(npc).expect("fresh world");
                }
                let v_rear = kph_to_mps(rng.random_range(20.0..30.0));
                let rear = Actor::new(
                    ActorId(20),
                    ActorKind::Car,
                    Vec2::new(-30.0 + jitter(&mut rng), 0.0),
                    v_rear,
                    Behavior::CruiseStraight { speed: v_rear },
                );
                world.add_actor(rear).expect("fresh world");
                (TARGET_ID, 45.0)
            }
        };

        Scenario {
            id,
            world,
            target,
            cruise_speed: cruise,
            duration,
        }
    }

    /// Consumes the scenario and returns just the world (handy in doctests).
    pub fn into_world(self) -> World {
        self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_build_and_contain_target() {
        for id in ScenarioId::ALL {
            let s = Scenario::build(id, 1);
            assert_eq!(s.id, id);
            assert!(s.world.actor(s.target).is_some(), "{id} missing target");
            assert_eq!(s.world.ego().id, EGO_ID);
            assert!(s.duration > 0.0);
        }
    }

    #[test]
    fn ds1_target_ahead_in_lane() {
        let s = Scenario::build(ScenarioId::Ds1, 3);
        let tv = s.world.actor(s.target).unwrap();
        assert!(tv.pose.position.x > 50.0);
        assert_eq!(tv.pose.position.y, 0.0);
        assert!(tv.kind.is_vehicle());
    }

    #[test]
    fn ds2_pedestrian_starts_off_road() {
        let s = Scenario::build(ScenarioId::Ds2, 3);
        let ped = s.world.actor(s.target).unwrap();
        assert_eq!(ped.kind, ActorKind::Pedestrian);
        assert!(ped.pose.position.y < -5.25, "starts beyond the road edge");
    }

    #[test]
    fn ds3_vehicle_parked_out_of_path() {
        let s = Scenario::build(ScenarioId::Ds3, 3);
        let tv = s.world.actor(s.target).unwrap();
        assert_eq!(tv.speed, 0.0);
        assert_eq!(tv.pose.position.y, -3.5);
        assert!(s.world.in_path_obstacle(0.3).is_none());
    }

    #[test]
    fn ds5_has_random_traffic_and_is_seed_dependent() {
        let a = Scenario::build(ScenarioId::Ds5, 1);
        let b = Scenario::build(ScenarioId::Ds5, 2);
        assert!(a.world.actors().len() >= 4);
        let pos_a: Vec<f64> = a.world.others().map(|o| o.pose.position.x).collect();
        let pos_b: Vec<f64> = b.world.others().map(|o| o.pose.position.x).collect();
        assert_ne!(pos_a, pos_b);
        // Same seed reproduces exactly.
        let a2 = Scenario::build(ScenarioId::Ds5, 1);
        let pos_a2: Vec<f64> = a2.world.others().map(|o| o.pose.position.x).collect();
        assert_eq!(pos_a, pos_a2);
    }

    #[test]
    fn scenario_names_match_paper() {
        assert_eq!(ScenarioId::Ds1.to_string(), "DS-1");
        assert_eq!(ScenarioId::Ds5.name(), "DS-5");
        assert!(ScenarioId::Ds2.target_is_pedestrian());
        assert!(!ScenarioId::Ds3.target_is_pedestrian());
    }
}
