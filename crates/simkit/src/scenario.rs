//! The five driving scenarios of §V-C, rebuilt on the plan-view world.
//!
//! All scenarios play out on a straight 3-lane road (ego lane, one adjacent
//! traffic lane to the left, a parking lane to the right) with a 50 kph limit,
//! mirroring the paper's Borregas Avenue setup. The ego cruises at 45 kph
//! unless the scenario says otherwise.

use crate::actor::{Actor, ActorId, ActorKind};
use crate::behavior::{Behavior, OnFinish, Waypoint};
use crate::math::Vec2;
use crate::rng;
use crate::road::Road;
use crate::units::kph_to_mps;
use crate::world::World;
use serde::{Deserialize, Serialize};

/// Identifier of a driving scenario from the paper (§V-C, Fig. 4), or a
/// procedurally generated scenario identified by its spec content hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioId {
    /// DS-1: ego follows a slower target vehicle in its lane.
    Ds1,
    /// DS-2: a pedestrian illegally crosses the street ahead of the ego.
    Ds2,
    /// DS-3: a target vehicle is parked in the parking lane.
    Ds3,
    /// DS-4: a pedestrian walks toward the ego in the parking lane, then stops.
    Ds4,
    /// DS-5: DS-1 plus random traffic — the random-attack baseline scenario.
    Ds5,
    /// A procedurally generated scenario, identified by the content hash of
    /// its `ScenarioSpec` (see the `av-scenarios` crate). The spec itself is
    /// carried out of band ([`Scenario::build`] cannot rebuild it); the hash
    /// is what cache keys, labels, and manifests record.
    Gen(u64),
}

impl ScenarioId {
    /// The five fixed paper scenarios, in paper order.
    pub const ALL: [ScenarioId; 5] = [
        ScenarioId::Ds1,
        ScenarioId::Ds2,
        ScenarioId::Ds3,
        ScenarioId::Ds4,
        ScenarioId::Ds5,
    ];

    /// The paper's name for the scenario; generated scenarios share the
    /// static `"GEN"` tag (use [`ScenarioId::label`] or `Display` for the
    /// hash-qualified form).
    pub fn name(self) -> &'static str {
        match self {
            ScenarioId::Ds1 => "DS-1",
            ScenarioId::Ds2 => "DS-2",
            ScenarioId::Ds3 => "DS-3",
            ScenarioId::Ds4 => "DS-4",
            ScenarioId::Ds5 => "DS-5",
            ScenarioId::Gen(_) => "GEN",
        }
    }

    /// A unique label: the paper name for fixed scenarios, the
    /// hash-qualified `GEN-xxxxxxxxxxxxxxxx` form for generated ones.
    pub fn label(self) -> String {
        match self {
            ScenarioId::Gen(hash) => format!("GEN-{hash:016x}"),
            fixed => fixed.name().to_string(),
        }
    }

    /// The content hash of a generated scenario, if this is one.
    pub fn gen_hash(self) -> Option<u64> {
        match self {
            ScenarioId::Gen(hash) => Some(hash),
            _ => None,
        }
    }

    /// Whether the scenario's target object is a pedestrian. Generated
    /// scenarios answer `false` here; their built worlds carry the actual
    /// target kind.
    pub fn target_is_pedestrian(self) -> bool {
        matches!(self, ScenarioId::Ds2 | ScenarioId::Ds4)
    }
}

impl std::fmt::Display for ScenarioId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioId::Gen(hash) => write!(f, "GEN-{hash:016x}"),
            fixed => f.write_str(fixed.name()),
        }
    }
}

/// The knobs [`Scenario::build`] historically hardcoded: road geometry,
/// cruise speed, spawn jitter, and the DS-5 traffic population. The default
/// reproduces the paper setup bit-for-bit (the golden-trace suite pins it);
/// spec-driven callers can widen any of them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioParams {
    /// Road layout (lane width, lane count, speed limit).
    pub road: Road,
    /// Ego cruise speed (kph). The paper drives Borregas Avenue at 45 kph.
    pub cruise_kph: f64,
    /// Half-width of the uniform longitudinal spawn jitter (m); every
    /// scripted actor's x0 draws from `±jitter_m`.
    pub jitter_m: f64,
    /// DS-5: oncoming NPC count range (inclusive).
    pub oncoming_count: (usize, usize),
    /// DS-5: oncoming NPC spawn range along x (m, half-open).
    pub oncoming_x: (f64, f64),
    /// DS-5: oncoming NPC speed range (kph, half-open).
    pub oncoming_speed_kph: (f64, f64),
    /// DS-5: trailing-car speed range (kph, half-open).
    pub rear_speed_kph: (f64, f64),
    /// DS-5: actor id of the first oncoming NPC (consecutive ids follow).
    pub first_npc_id: u32,
    /// DS-5: actor id of the trailing car.
    pub rear_id: u32,
}

impl Default for ScenarioParams {
    fn default() -> Self {
        ScenarioParams {
            road: Road::default(),
            cruise_kph: 45.0,
            jitter_m: 2.0,
            oncoming_count: (2, 4),
            oncoming_x: (60.0, 240.0),
            oncoming_speed_kph: (20.0, 40.0),
            rear_speed_kph: (20.0, 30.0),
            first_npc_id: 10,
            rear_id: 20,
        }
    }
}

/// A fully built scenario: the initial world plus run metadata.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Which scenario this is.
    pub id: ScenarioId,
    /// The initial world state.
    pub world: World,
    /// The scripted target object (the paper's "TO"/"TV").
    pub target: ActorId,
    /// The ego's cruise speed for the run (m/s).
    pub cruise_speed: f64,
    /// Nominal duration of the run in seconds.
    pub duration: f64,
}

/// The actor id reserved for the ego vehicle in every scenario.
pub const EGO_ID: ActorId = ActorId(0);
/// The actor id reserved for the scripted target object in every scenario.
pub const TARGET_ID: ActorId = ActorId(1);

impl Scenario {
    /// Builds scenario `id` with the paper's parameters. `seed` randomizes
    /// the DS-5 traffic and adds small per-run jitter to initial positions
    /// (±2 m longitudinal), so campaigns explore slightly different
    /// interaction timings, like the paper's 150–200 runs per campaign do.
    ///
    /// # Panics
    ///
    /// Panics on [`ScenarioId::Gen`]: generated scenarios carry their world
    /// recipe in a `ScenarioSpec` (the `av-scenarios` crate) and are built
    /// by sampling that spec, not from the id alone.
    pub fn build(id: ScenarioId, seed: u64) -> Scenario {
        Scenario::build_with(id, seed, &ScenarioParams::default())
    }

    /// Builds scenario `id` with explicit [`ScenarioParams`]. The default
    /// parameters reproduce [`Scenario::build`] bit-for-bit; everything the
    /// five fixed scenarios used to hardcode (road geometry, cruise speed,
    /// jitter width, the DS-5 traffic population and its actor-id layout)
    /// is a parameter here.
    ///
    /// # Panics
    ///
    /// Panics on [`ScenarioId::Gen`] (see [`Scenario::build`]).
    pub fn build_with(id: ScenarioId, seed: u64, params: &ScenarioParams) -> Scenario {
        let mut rng = rng::run_rng(seed, 0xD5);
        let road = params.road.clone();
        let cruise = kph_to_mps(params.cruise_kph);
        let jitter_m = params.jitter_m;
        let jitter = move |rng: &mut rand::rngs::StdRng| {
            if jitter_m > 0.0 {
                rng.random_range(-jitter_m..jitter_m)
            } else {
                0.0
            }
        };

        let ego = Actor::new(
            EGO_ID,
            ActorKind::Car,
            Vec2::new(0.0, 0.0),
            cruise,
            Behavior::Ego,
        );
        let mut world = World::new(road, ego);

        let (target, duration) = match id {
            ScenarioId::Ds1 => {
                let v_tv = kph_to_mps(25.0);
                let x0 = 60.0 + jitter(&mut rng);
                let tv = Actor::new(
                    TARGET_ID,
                    ActorKind::Car,
                    Vec2::new(x0, 0.0),
                    v_tv,
                    Behavior::CruiseStraight { speed: v_tv },
                );
                world.add_actor(tv).expect("fresh world");
                (TARGET_ID, 45.0)
            }
            ScenarioId::Ds2 => {
                let x0 = 70.0 + jitter(&mut rng);
                let walk = 1.4;
                let ped = Actor::new(
                    TARGET_ID,
                    ActorKind::Pedestrian,
                    Vec2::new(x0, -6.5),
                    walk,
                    Behavior::waypoints(
                        vec![Waypoint::new(Vec2::new(x0, 6.5), walk)],
                        OnFinish::Stop,
                    ),
                );
                world.add_actor(ped).expect("fresh world");
                (TARGET_ID, 30.0)
            }
            ScenarioId::Ds3 => {
                let x0 = 90.0 + jitter(&mut rng);
                // Parked in the right-most (parking) lane, wherever the
                // road layout puts it (-3.5 m on the paper's road).
                let y = world.road.lane_center(world.road.min_lane);
                let tv = Actor::new(
                    TARGET_ID,
                    ActorKind::Car,
                    Vec2::new(x0, y),
                    0.0,
                    Behavior::Parked,
                );
                world.add_actor(tv).expect("fresh world");
                (TARGET_ID, 20.0)
            }
            ScenarioId::Ds4 => {
                let x0 = 95.0 + jitter(&mut rng);
                let walk = 1.4;
                let ped = Actor::new(
                    TARGET_ID,
                    ActorKind::Pedestrian,
                    Vec2::new(x0, -3.3),
                    walk,
                    Behavior::waypoints(
                        vec![Waypoint::new(Vec2::new(x0 - 5.0, -3.3), walk)],
                        OnFinish::Stop,
                    ),
                );
                world.add_actor(ped).expect("fresh world");
                (TARGET_ID, 25.0)
            }
            ScenarioId::Ds5 => {
                let v_tv = kph_to_mps(25.0);
                let x0 = 60.0 + jitter(&mut rng);
                let tv = Actor::new(
                    TARGET_ID,
                    ActorKind::Car,
                    Vec2::new(x0, 0.0),
                    v_tv,
                    Behavior::CruiseStraight { speed: v_tv },
                );
                world.add_actor(tv).expect("fresh world");
                // Oncoming traffic in the left-most lane plus a trailing
                // car, with randomized speeds and positions (§V-C: "random
                // waypoints and trajectories"). The lead-most oncoming car
                // (smallest x) gets the highest speed so same-lane NPCs
                // never drive through each other (no NPC-NPC collision
                // model in the plan-view world). Population size, spawn and
                // speed ranges, and the actor-id layout all come from
                // `params` (the historical values are the defaults).
                let (n_min, n_max) = params.oncoming_count;
                let n_oncoming = if n_min < n_max {
                    rng.random_range(n_min..=n_max)
                } else {
                    n_min
                };
                let (x_lo, x_hi) = params.oncoming_x;
                let mut xs: Vec<f64> = (0..n_oncoming)
                    .map(|_| {
                        if x_lo < x_hi {
                            rng.random_range(x_lo..x_hi)
                        } else {
                            x_lo
                        }
                    })
                    .collect();
                let (v_lo, v_hi) = params.oncoming_speed_kph;
                let mut vs: Vec<f64> = (0..n_oncoming)
                    .map(|_| {
                        kph_to_mps(if v_lo < v_hi {
                            rng.random_range(v_lo..v_hi)
                        } else {
                            v_lo
                        })
                    })
                    .collect();
                xs.sort_by(|a, b| a.total_cmp(b));
                vs.sort_by(|a, b| b.total_cmp(a));
                let oncoming_y = world.road.lane_center(world.road.max_lane);
                for (i, (x, v)) in xs.into_iter().zip(vs).enumerate() {
                    let mut npc = Actor::new(
                        ActorId(params.first_npc_id + i as u32),
                        ActorKind::Car,
                        Vec2::new(x, oncoming_y),
                        v,
                        Behavior::CruiseStraight { speed: v },
                    );
                    npc.pose.heading = std::f64::consts::PI; // oncoming
                    world.add_actor(npc).expect("fresh world");
                }
                let (r_lo, r_hi) = params.rear_speed_kph;
                let v_rear = kph_to_mps(if r_lo < r_hi {
                    rng.random_range(r_lo..r_hi)
                } else {
                    r_lo
                });
                let rear = Actor::new(
                    ActorId(params.rear_id),
                    ActorKind::Car,
                    Vec2::new(-30.0 + jitter(&mut rng), 0.0),
                    v_rear,
                    Behavior::CruiseStraight { speed: v_rear },
                );
                world.add_actor(rear).expect("fresh world");
                (TARGET_ID, 45.0)
            }
            ScenarioId::Gen(hash) => panic!(
                "ScenarioId::Gen({hash:#x}) has no standalone build recipe; \
                 sample its ScenarioSpec (av-scenarios) instead"
            ),
        };

        Scenario {
            id,
            world,
            target,
            cruise_speed: cruise,
            duration,
        }
    }

    /// Consumes the scenario and returns just the world (handy in doctests).
    pub fn into_world(self) -> World {
        self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenarios_build_and_contain_target() {
        for id in ScenarioId::ALL {
            let s = Scenario::build(id, 1);
            assert_eq!(s.id, id);
            assert!(s.world.actor(s.target).is_some(), "{id} missing target");
            assert_eq!(s.world.ego().id, EGO_ID);
            assert!(s.duration > 0.0);
        }
    }

    #[test]
    fn ds1_target_ahead_in_lane() {
        let s = Scenario::build(ScenarioId::Ds1, 3);
        let tv = s.world.actor(s.target).unwrap();
        assert!(tv.pose.position.x > 50.0);
        assert_eq!(tv.pose.position.y, 0.0);
        assert!(tv.kind.is_vehicle());
    }

    #[test]
    fn ds2_pedestrian_starts_off_road() {
        let s = Scenario::build(ScenarioId::Ds2, 3);
        let ped = s.world.actor(s.target).unwrap();
        assert_eq!(ped.kind, ActorKind::Pedestrian);
        assert!(ped.pose.position.y < -5.25, "starts beyond the road edge");
    }

    #[test]
    fn ds3_vehicle_parked_out_of_path() {
        let s = Scenario::build(ScenarioId::Ds3, 3);
        let tv = s.world.actor(s.target).unwrap();
        assert_eq!(tv.speed, 0.0);
        assert_eq!(tv.pose.position.y, -3.5);
        assert!(s.world.in_path_obstacle(0.3).is_none());
    }

    #[test]
    fn ds5_has_random_traffic_and_is_seed_dependent() {
        let a = Scenario::build(ScenarioId::Ds5, 1);
        let b = Scenario::build(ScenarioId::Ds5, 2);
        assert!(a.world.actors().len() >= 4);
        let pos_a: Vec<f64> = a.world.others().map(|o| o.pose.position.x).collect();
        let pos_b: Vec<f64> = b.world.others().map(|o| o.pose.position.x).collect();
        assert_ne!(pos_a, pos_b);
        // Same seed reproduces exactly.
        let a2 = Scenario::build(ScenarioId::Ds5, 1);
        let pos_a2: Vec<f64> = a2.world.others().map(|o| o.pose.position.x).collect();
        assert_eq!(pos_a, pos_a2);
    }

    #[test]
    fn scenario_names_match_paper() {
        assert_eq!(ScenarioId::Ds1.to_string(), "DS-1");
        assert_eq!(ScenarioId::Ds5.name(), "DS-5");
        assert!(ScenarioId::Ds2.target_is_pedestrian());
        assert!(!ScenarioId::Ds3.target_is_pedestrian());
    }

    #[test]
    fn generated_ids_are_hash_labeled() {
        let id = ScenarioId::Gen(0xABCD);
        assert_eq!(id.name(), "GEN");
        assert_eq!(id.label(), "GEN-000000000000abcd");
        assert_eq!(id.to_string(), id.label());
        assert_eq!(id.gen_hash(), Some(0xABCD));
        assert_eq!(ScenarioId::Ds1.gen_hash(), None);
        assert!(!id.target_is_pedestrian());
    }

    /// Default params must reproduce `Scenario::build` bit-for-bit — the
    /// contract that lets `build` delegate to `build_with`.
    #[test]
    fn default_params_are_bit_identical_to_build() {
        for id in ScenarioId::ALL {
            for seed in [0, 7, 1234] {
                let a = Scenario::build(id, seed);
                let b = Scenario::build_with(id, seed, &ScenarioParams::default());
                assert_eq!(a.duration, b.duration);
                assert_eq!(a.world.actors().len(), b.world.actors().len());
                for (x, y) in a.world.actors().iter().zip(b.world.actors()) {
                    assert_eq!(x.id, y.id, "{id} seed {seed}");
                    assert_eq!(
                        x.pose.position.x.to_bits(),
                        y.pose.position.x.to_bits(),
                        "{id} seed {seed} actor {} x",
                        x.id
                    );
                    assert_eq!(x.pose.position.y.to_bits(), y.pose.position.y.to_bits());
                    assert_eq!(x.speed.to_bits(), y.speed.to_bits());
                }
            }
        }
    }

    #[test]
    fn params_widen_the_ds5_population() {
        let params = ScenarioParams {
            oncoming_count: (6, 9),
            first_npc_id: 100,
            rear_id: 200,
            ..ScenarioParams::default()
        };
        let s = Scenario::build_with(ScenarioId::Ds5, 3, &params);
        // ego + target + >= 6 oncoming + rear
        assert!(s.world.actors().len() >= 9);
        assert!(s.world.actor(ActorId(100)).is_some());
        assert!(s.world.actor(ActorId(200)).is_some());
    }

    #[test]
    fn degenerate_param_ranges_do_not_panic() {
        let params = ScenarioParams {
            jitter_m: 0.0,
            oncoming_count: (3, 3),
            oncoming_x: (80.0, 80.0),
            oncoming_speed_kph: (25.0, 25.0),
            rear_speed_kph: (20.0, 20.0),
            ..ScenarioParams::default()
        };
        let a = Scenario::build_with(ScenarioId::Ds5, 1, &params);
        let b = Scenario::build_with(ScenarioId::Ds5, 2, &params);
        // Fully pinned ranges: seeds no longer matter.
        let xs_a: Vec<u64> = a
            .world
            .actors()
            .iter()
            .map(|x| x.pose.position.x.to_bits())
            .collect();
        let xs_b: Vec<u64> = b
            .world
            .actors()
            .iter()
            .map(|x| x.pose.position.x.to_bits())
            .collect();
        assert_eq!(xs_a, xs_b);
    }

    #[test]
    #[should_panic(expected = "no standalone build recipe")]
    fn gen_ids_cannot_build_standalone() {
        let _ = Scenario::build(ScenarioId::Gen(1), 0);
    }
}
