//! Motion scripts for non-ego actors.
//!
//! LGSVL scenarios script every non-ego actor with waypoints (§V-B: "LGSVL
//! provides Python APIs for creating driving scenarios"). This module is the
//! equivalent: a small set of declarative behaviors advanced by
//! [`crate::world::World::step`].

use crate::math::{Pose, Vec2};
use serde::{Deserialize, Serialize};

/// A waypoint: drive toward `target` at `speed`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Waypoint {
    /// Target position in road coordinates.
    pub target: Vec2,
    /// Travel speed toward the target (m/s, > 0).
    pub speed: f64,
}

impl Waypoint {
    /// Creates a waypoint.
    pub fn new(target: Vec2, speed: f64) -> Self {
        Waypoint { target, speed }
    }
}

/// What a waypoint actor does after consuming its last waypoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OnFinish {
    /// Stop and stay put.
    Stop,
    /// Keep driving straight at the last waypoint's speed.
    Continue,
}

/// Motion script for a non-ego actor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Behavior {
    /// Controlled externally (the ego vehicle).
    Ego,
    /// Stationary (parked vehicle, standing pedestrian).
    Parked,
    /// Drive straight along the current heading at a constant speed.
    CruiseStraight {
        /// Constant speed in m/s.
        speed: f64,
    },
    /// Follow a list of waypoints, then apply [`OnFinish`].
    Waypoints {
        /// Remaining waypoints, consumed front to back.
        points: Vec<Waypoint>,
        /// Index of the next waypoint to reach.
        next: usize,
        /// Behavior after the final waypoint.
        on_finish: OnFinish,
    },
}

impl Behavior {
    /// Convenience constructor for a waypoint script.
    pub fn waypoints(points: Vec<Waypoint>, on_finish: OnFinish) -> Behavior {
        Behavior::Waypoints {
            points,
            next: 0,
            on_finish,
        }
    }

    /// Advances `pose`/`speed` by `dt` seconds according to the script.
    ///
    /// Returns the new (pose, speed). [`Behavior::Ego`] is a no-op; the world
    /// integrates the ego from the ADS actuation instead.
    pub fn step(&mut self, pose: Pose, speed: f64, dt: f64) -> (Pose, f64) {
        match self {
            Behavior::Ego => (pose, speed),
            Behavior::Parked => (pose, 0.0),
            Behavior::CruiseStraight { speed: s } => {
                let fwd = pose.forward();
                (Pose::new(pose.position + fwd * (*s * dt), pose.heading), *s)
            }
            Behavior::Waypoints {
                points,
                next,
                on_finish,
            } => {
                if *next >= points.len() {
                    return match on_finish {
                        OnFinish::Stop => (pose, 0.0),
                        OnFinish::Continue => {
                            let s = points.last().map_or(speed, |w| w.speed);
                            let fwd = pose.forward();
                            (Pose::new(pose.position + fwd * (s * dt), pose.heading), s)
                        }
                    };
                }
                let wp = points[*next];
                let to_target = wp.target - pose.position;
                let dist = to_target.norm();
                let step_len = wp.speed * dt;
                if dist <= step_len || dist < 1e-9 {
                    *next += 1;
                    let heading = if dist > 1e-9 {
                        to_target.y.atan2(to_target.x)
                    } else {
                        pose.heading
                    };
                    // Land exactly on the waypoint; remaining budget is dropped
                    // (sub-step precision is irrelevant at 30 Hz).
                    (Pose::new(wp.target, heading), wp.speed)
                } else {
                    let dir = to_target / dist;
                    let heading = dir.y.atan2(dir.x);
                    (Pose::new(pose.position + dir * step_len, heading), wp.speed)
                }
            }
        }
    }

    /// Whether the script has finished all its motion (parked or waypoints done with `Stop`).
    pub fn is_settled(&self) -> bool {
        match self {
            Behavior::Parked => true,
            Behavior::Waypoints {
                points,
                next,
                on_finish: OnFinish::Stop,
            } => *next >= points.len(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::approx_eq;

    #[test]
    fn parked_stays_put() {
        let mut b = Behavior::Parked;
        let pose = Pose::new(Vec2::new(5.0, 1.0), 0.3);
        let (p, v) = b.step(pose, 3.0, 0.1);
        assert_eq!(p.position, pose.position);
        assert_eq!(v, 0.0);
    }

    #[test]
    fn cruise_moves_along_heading() {
        let mut b = Behavior::CruiseStraight { speed: 10.0 };
        let pose = Pose::new(Vec2::ZERO, 0.0);
        let (p, v) = b.step(pose, 0.0, 0.5);
        assert!(approx_eq(p.position.x, 5.0, 1e-12));
        assert_eq!(v, 10.0);
    }

    #[test]
    fn waypoints_walk_and_stop() {
        let mut b = Behavior::waypoints(
            vec![
                Waypoint::new(Vec2::new(0.0, 2.0), 1.0),
                Waypoint::new(Vec2::new(0.0, 4.0), 1.0),
            ],
            OnFinish::Stop,
        );
        let mut pose = Pose::new(Vec2::ZERO, 0.0);
        let mut speed = 0.0;
        for _ in 0..100 {
            let (p, v) = b.step(pose, speed, 0.1);
            pose = p;
            speed = v;
        }
        assert!(approx_eq(pose.position.y, 4.0, 1e-9));
        assert_eq!(speed, 0.0);
        assert!(b.is_settled());
    }

    #[test]
    fn waypoints_continue_keeps_last_speed() {
        let mut b = Behavior::waypoints(
            vec![Waypoint::new(Vec2::new(1.0, 0.0), 2.0)],
            OnFinish::Continue,
        );
        let mut pose = Pose::new(Vec2::ZERO, 0.0);
        for _ in 0..20 {
            let (p, _) = b.step(pose, 0.0, 0.1);
            pose = p;
        }
        assert!(pose.position.x > 2.0);
    }

    #[test]
    fn waypoint_heading_points_at_target() {
        let mut b = Behavior::waypoints(
            vec![Waypoint::new(Vec2::new(0.0, 10.0), 1.0)],
            OnFinish::Stop,
        );
        let (p, _) = b.step(Pose::new(Vec2::ZERO, 0.0), 0.0, 0.1);
        assert!(approx_eq(p.heading, std::f64::consts::FRAC_PI_2, 1e-9));
    }
}
