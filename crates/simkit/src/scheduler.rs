//! Multi-rate task scheduler.
//!
//! The paper's testbed runs sensors and software modules at different rates
//! (camera 15 Hz, LiDAR 10 Hz, GPS 12.5 Hz, Apollo planning ~10 Hz). The
//! scheduler reproduces that: tasks are registered with integer-microsecond
//! periods and the simulation loop asks which tasks fire at each tick.

use av_telemetry::{Stage, Telemetry, TraceEvent};

/// A periodic task identifier returned by [`Scheduler::add_task`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Task(usize);

#[derive(Debug, Clone)]
struct Entry {
    name: &'static str,
    period_us: u64,
    next_fire_us: u64,
}

/// Fixed-period task scheduler over an integer microsecond clock.
///
/// ```
/// use av_simkit::scheduler::Scheduler;
/// let mut s = Scheduler::new();
/// let camera = s.add_task_hz("camera", 15.0);
/// let fired = s.advance_to(0); // everything fires at t = 0
/// assert!(fired.contains(&camera));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Scheduler {
    entries: Vec<Entry>,
    telemetry: Telemetry,
}

impl Scheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        Scheduler::default()
    }

    /// Attaches a telemetry handle: each [`Scheduler::advance_to`] call is
    /// timed as [`Stage::SchedulerAdvance`] and every dispatched task emits
    /// a [`TraceEvent::SchedulerTask`] carrying the task's static name.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Registers a task firing every `period_us` microseconds, first at t=0.
    ///
    /// # Panics
    ///
    /// Panics if `period_us` is zero.
    pub fn add_task(&mut self, name: &'static str, period_us: u64) -> Task {
        assert!(period_us > 0, "task {name}: zero period");
        self.entries.push(Entry {
            name,
            period_us,
            next_fire_us: 0,
        });
        Task(self.entries.len() - 1)
    }

    /// Registers a task by frequency in Hz (rounded to whole microseconds).
    pub fn add_task_hz(&mut self, name: &'static str, hz: f64) -> Task {
        assert!(hz > 0.0, "task {name}: non-positive rate {hz}");
        self.add_task(name, (1e6 / hz).round() as u64)
    }

    /// Advances the clock to `now_us` and returns every task whose fire time
    /// has been reached, catching up multi-period gaps one fire at a time.
    ///
    /// Tasks are reported in registration order; a task that fell multiple
    /// periods behind fires once per call until it catches up (sensors drop
    /// frames rather than burst).
    ///
    /// Allocating convenience wrapper around [`Scheduler::advance_into`] —
    /// hot loops should hold a reusable buffer instead (the simulation loop
    /// calls this ~900 times per run).
    pub fn advance_to(&mut self, now_us: u64) -> Vec<Task> {
        let mut fired = Vec::new();
        self.advance_into(now_us, &mut fired);
        fired
    }

    /// Allocation-free [`Scheduler::advance_to`]: clears `fired` and appends
    /// every task whose fire time has been reached, in registration order.
    ///
    /// # Buffer reuse across sessions
    ///
    /// `fired` is cleared *unconditionally* at the top of every call — never
    /// merged into — so one buffer may be shared across ticks, schedulers,
    /// and batch members without a stale entry from a previous session
    /// leaking into the next dispatch. The one contract a sharing caller
    /// must uphold: [`Task`] handles are registration *indices*, private to
    /// the scheduler that issued them. Reading this buffer against a
    /// *different* scheduler is only meaningful when both registered the
    /// same task list in the same order (the lockstep batch engine's
    /// invariant; see `tests::shared_buffer_across_schedulers`).
    pub fn advance_into(&mut self, now_us: u64, fired: &mut Vec<Task>) {
        let _timer = self.telemetry.time(Stage::SchedulerAdvance);
        fired.clear();
        for (i, e) in self.entries.iter_mut().enumerate() {
            if now_us >= e.next_fire_us {
                fired.push(Task(i));
                // Skip any fully-missed periods: sensors emit the latest
                // sample, not a backlog.
                let missed = (now_us - e.next_fire_us) / e.period_us;
                e.next_fire_us += (missed + 1) * e.period_us;
            }
        }
        if self.telemetry.is_enabled() {
            let t = now_us as f64 / 1e6;
            for task in fired.iter() {
                let name = self.entries[task.0].name;
                self.telemetry
                    .emit(t, || TraceEvent::SchedulerTask { task: name });
            }
        }
    }

    /// The registered name of a task.
    pub fn name(&self, task: Task) -> &'static str {
        self.entries[task.0].name
    }

    /// The period of a task in microseconds.
    pub fn period_us(&self, task: Task) -> u64 {
        self.entries[task.0].period_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tasks_fire_at_their_rate() {
        let mut s = Scheduler::new();
        let fast = s.add_task("fast", 10);
        let slow = s.add_task("slow", 30);
        let mut fast_count = 0;
        let mut slow_count = 0;
        for t in (0..=120).step_by(10) {
            let fired = s.advance_to(t);
            fast_count += fired.iter().filter(|&&x| x == fast).count();
            slow_count += fired.iter().filter(|&&x| x == slow).count();
        }
        assert_eq!(fast_count, 13); // t = 0,10,...,120
        assert_eq!(slow_count, 5); // t = 0,30,60,90,120
    }

    #[test]
    fn missed_periods_do_not_burst() {
        let mut s = Scheduler::new();
        let t = s.add_task("t", 10);
        assert_eq!(s.advance_to(0), vec![t]);
        // Jump far ahead: only one fire, and the next fire lands after `now`.
        assert_eq!(s.advance_to(95), vec![t]);
        assert_eq!(s.advance_to(95), Vec::<Task>::new());
        assert_eq!(s.advance_to(100), vec![t]);
    }

    #[test]
    fn advance_into_reuses_buffer_and_matches_advance_to() {
        let mut a = Scheduler::new();
        let mut b = Scheduler::new();
        for s in [&mut a, &mut b] {
            s.add_task("fast", 10);
            s.add_task("slow", 30);
        }
        let mut fired = Vec::new();
        for t in (0..=120).step_by(10) {
            b.advance_into(t, &mut fired);
            assert_eq!(a.advance_to(t), fired);
        }
        // The buffer is cleared each call, not accumulated.
        b.advance_into(121, &mut fired);
        assert!(fired.is_empty());
    }

    #[test]
    fn shared_buffer_across_schedulers() {
        // A batch engine reuses ONE fired buffer across many sessions'
        // schedulers. A stale entry surviving from session A's dispatch
        // into session B's would silently corrupt session B, so pin the
        // clearing contract in the sharing pattern itself.
        let mut a = Scheduler::new();
        let mut b = Scheduler::new();
        // Identical registration order → identical Task handles (the
        // invariant that makes a shared fired list readable by every lane).
        let (a_fast, a_slow) = (a.add_task("fast", 10), a.add_task("slow", 30));
        let (b_fast, b_slow) = (b.add_task("fast", 10), b.add_task("slow", 30));
        assert_eq!((a_fast, a_slow), (b_fast, b_slow));

        let mut fired = Vec::new();
        // Put the schedulers out of phase: A consumed t=0, B has not.
        a.advance_into(0, &mut fired);
        assert_eq!(fired, vec![a_fast, a_slow]);
        // B at t=5 fires both (first fire is t=0, caught up late)...
        b.advance_into(5, &mut fired);
        assert_eq!(fired, vec![b_fast, b_slow]);
        // ...and A at t=5 fires nothing: the buffer must come back empty,
        // not holding B's leftovers.
        a.advance_into(5, &mut fired);
        assert!(
            fired.is_empty(),
            "stale fired entries leaked across sessions"
        );
        // Interleave both schedulers through one buffer and compare every
        // dispatch against control schedulers that each own a private
        // buffer — any cross-contamination shows up as a mismatch.
        let (mut ctl_a, mut ctl_b) = (a.clone(), b.clone());
        for t in (10..=120).step_by(5) {
            a.advance_into(t, &mut fired);
            assert_eq!(fired, ctl_a.advance_to(t), "A contaminated at t={t}");
            b.advance_into(t, &mut fired);
            assert_eq!(fired, ctl_b.advance_to(t), "B contaminated at t={t}");
        }
    }

    #[test]
    fn hz_conversion() {
        let mut s = Scheduler::new();
        let cam = s.add_task_hz("camera", 15.0);
        assert_eq!(s.period_us(cam), 66_667);
        assert_eq!(s.name(cam), "camera");
    }

    #[test]
    #[should_panic(expected = "zero period")]
    fn zero_period_panics() {
        Scheduler::new().add_task("bad", 0);
    }
}
