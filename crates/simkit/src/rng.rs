//! Seeded random sampling used by every stochastic model in the workspace.
//!
//! `rand` (the only RNG dependency allowed offline) does not ship normal or
//! exponential distributions, so this module implements Box–Muller and
//! inverse-CDF sampling directly. All samplers take `&mut impl Rng` so the
//! caller controls seeding and reproducibility.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Derives a per-run RNG from a campaign seed and a run index.
///
/// A [SplitMix64](https://prng.di.unimi.it/splitmix64.c) step mixes the two
/// inputs so that neighbouring run indices produce uncorrelated streams.
pub fn run_rng(campaign_seed: u64, run_index: u64) -> StdRng {
    StdRng::seed_from_u64(mix(campaign_seed, run_index))
}

/// Mixes two 64-bit values into one (SplitMix64 finalizer).
pub fn mix(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Samples a standard normal via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from the half-open (0, 1].
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples `Normal(mean, std_dev)`.
///
/// # Panics
///
/// Panics in debug builds if `std_dev` is negative.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    debug_assert!(std_dev >= 0.0, "normal: negative std_dev {std_dev}");
    mean + std_dev * standard_normal(rng)
}

/// Samples a shifted exponential: `loc + Exp(lambda)`.
///
/// This matches the `Exp(loc, λ)` parameterization the paper uses for the
/// continuous-misdetection streak lengths in Fig. 5 (a–b).
///
/// # Panics
///
/// Panics in debug builds if `lambda` is not strictly positive.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, loc: f64, lambda: f64) -> f64 {
    debug_assert!(
        lambda > 0.0,
        "exponential: lambda must be > 0, got {lambda}"
    );
    let u: f64 = 1.0 - rng.random::<f64>();
    loc - u.ln() / lambda
}

/// Returns `true` with probability `p` (clamped to `[0, 1]`).
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    rng.random::<f64>() < p.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn run_rng_is_deterministic() {
        let mut a = run_rng(1, 2);
        let mut b = run_rng(1, 2);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn run_rng_differs_across_runs() {
        let mut a = run_rng(1, 2);
        let mut b = run_rng(1, 3);
        let same = (0..16)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn exponential_moments_and_support() {
        let mut r = rng();
        let n = 200_000;
        let loc = 1.0;
        let lambda = 0.717;
        let samples: Vec<f64> = (0..n).map(|_| exponential(&mut r, loc, lambda)).collect();
        assert!(samples.iter().all(|&s| s >= loc));
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - (loc + 1.0 / lambda)).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = rng();
        assert!((0..100).all(|_| bernoulli(&mut r, 1.1)));
        assert!((0..100).all(|_| !bernoulli(&mut r, -0.1)));
    }

    #[test]
    fn bernoulli_rate() {
        let mut r = rng();
        let hits = (0..100_000).filter(|_| bernoulli(&mut r, 0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }
}
