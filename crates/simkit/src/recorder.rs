//! Per-run time-series capture used by the evaluation harness.

use serde::{Deserialize, Serialize};

/// One sample of the quantities the evaluation tracks, taken whenever an
/// actuation command is sent (the paper computes `d_safe` at actuation time,
/// §II-C).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Simulation time (s).
    pub t: f64,
    /// Ego speed (m/s).
    pub ego_speed: f64,
    /// Commanded ego acceleration (m/s²).
    pub ego_accel: f64,
    /// Ground-truth safety potential δ = d_safe − d_stop (m).
    pub delta: f64,
    /// Ground-truth bumper gap to the scripted target object (m).
    pub target_gap: f64,
    /// Whether an attack perturbation was applied to this frame.
    pub attack_active: bool,
    /// Whether the ADS was emergency braking at this sample.
    pub emergency_braking: bool,
}

/// Discrete events of interest during a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// The attacker began perturbing the camera feed.
    AttackStarted,
    /// The attacker stopped perturbing the camera feed.
    AttackEnded,
    /// The ADS entered emergency braking.
    EmergencyBrake,
    /// Ground-truth separation dropped below the 4 m simulator-halt limit.
    Collision,
}

/// Recorded history of a single simulation run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunRecord {
    /// Periodic samples, in time order.
    pub samples: Vec<Sample>,
    /// Time-stamped events, in time order.
    pub events: Vec<(f64, Event)>,
}

impl RunRecord {
    /// Creates an empty record.
    pub fn new() -> Self {
        RunRecord::default()
    }

    /// Appends a sample.
    pub fn push_sample(&mut self, sample: Sample) {
        self.samples.push(sample);
    }

    /// Appends an event at time `t`.
    pub fn push_event(&mut self, t: f64, event: Event) {
        self.events.push((t, event));
    }

    /// Time of the first occurrence of `event`, if any.
    pub fn first_event(&self, event: Event) -> Option<f64> {
        self.events
            .iter()
            .find(|(_, e)| *e == event)
            .map(|(t, _)| *t)
    }

    /// Whether `event` occurred at least once.
    pub fn has_event(&self, event: Event) -> bool {
        self.first_event(event).is_some()
    }

    /// Minimum ground-truth safety potential from `from_t` (inclusive) to the
    /// end of the run — the Fig. 6 metric when `from_t` is the attack start.
    pub fn min_delta_since(&self, from_t: f64) -> Option<f64> {
        self.samples
            .iter()
            .filter(|s| s.t >= from_t)
            .map(|s| s.delta)
            .fold(None, |acc, d| Some(acc.map_or(d, |a: f64| a.min(d))))
    }

    /// Number of samples flagged as attack-active (the realized attack
    /// length in actuation samples).
    pub fn attack_sample_count(&self) -> usize {
        self.samples.iter().filter(|s| s.attack_active).count()
    }

    /// Duration covered by the samples (s), zero if fewer than two samples.
    pub fn duration(&self) -> f64 {
        match (self.samples.first(), self.samples.last()) {
            (Some(a), Some(b)) => b.t - a.t,
            _ => 0.0,
        }
    }

    /// Order-sensitive 64-bit FNV-1a digest of the whole record: every
    /// sample field bit-exact (`f64::to_bits`) plus the event sequence.
    ///
    /// Two records digest equal iff their trajectories are bit-identical,
    /// so the golden-trace regression suite can commit this one hex string
    /// per 〈scenario, seed〉 instead of a full trace dump.
    pub fn digest(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        h = fnv_u64(h, self.samples.len() as u64);
        for s in &self.samples {
            h = fnv_u64(h, s.t.to_bits());
            h = fnv_u64(h, s.ego_speed.to_bits());
            h = fnv_u64(h, s.ego_accel.to_bits());
            h = fnv_u64(h, s.delta.to_bits());
            h = fnv_u64(h, s.target_gap.to_bits());
            h = fnv_u64(h, u64::from(s.attack_active));
            h = fnv_u64(h, u64::from(s.emergency_braking));
        }
        h = fnv_u64(h, self.events.len() as u64);
        for (t, event) in &self.events {
            h = fnv_u64(h, t.to_bits());
            let tag = match event {
                Event::AttackStarted => 1u64,
                Event::AttackEnded => 2,
                Event::EmergencyBrake => 3,
                Event::Collision => 4,
            };
            h = fnv_u64(h, tag);
        }
        format!("{h:016x}")
    }
}

/// Folds one 64-bit word into an FNV-1a state, byte by byte.
fn fnv_u64(mut h: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, delta: f64, attack: bool) -> Sample {
        Sample {
            t,
            ego_speed: 10.0,
            ego_accel: 0.0,
            delta,
            target_gap: delta + 5.0,
            attack_active: attack,
            emergency_braking: false,
        }
    }

    #[test]
    fn min_delta_since_respects_window() {
        let mut r = RunRecord::new();
        r.push_sample(sample(0.0, 3.0, false)); // before the window
        r.push_sample(sample(1.0, 10.0, true));
        r.push_sample(sample(2.0, 7.0, true));
        assert_eq!(r.min_delta_since(0.5), Some(7.0));
        assert_eq!(r.min_delta_since(0.0), Some(3.0));
        assert_eq!(r.min_delta_since(5.0), None);
    }

    #[test]
    fn events_query() {
        let mut r = RunRecord::new();
        r.push_event(1.5, Event::AttackStarted);
        r.push_event(2.0, Event::EmergencyBrake);
        assert_eq!(r.first_event(Event::AttackStarted), Some(1.5));
        assert!(r.has_event(Event::EmergencyBrake));
        assert!(!r.has_event(Event::Collision));
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let mut a = RunRecord::new();
        a.push_sample(sample(0.0, 10.0, false));
        a.push_event(1.0, Event::AttackStarted);
        let mut b = a.clone();
        assert_eq!(a.digest(), b.digest(), "equal records, equal digests");
        assert_eq!(a.digest().len(), 16);

        // One ULP of one field changes the digest.
        b.samples[0].delta = f64::from_bits(b.samples[0].delta.to_bits() + 1);
        assert_ne!(a.digest(), b.digest());

        // Event order matters.
        let mut c = a.clone();
        c.push_event(2.0, Event::EmergencyBrake);
        let mut d = a.clone();
        d.push_event(2.0, Event::Collision);
        assert_ne!(c.digest(), d.digest());

        // Empty record digests to a fixed, non-trivial value.
        assert_ne!(RunRecord::new().digest(), a.digest());
    }

    #[test]
    fn counts_and_duration() {
        let mut r = RunRecord::new();
        r.push_sample(sample(0.0, 10.0, false));
        r.push_sample(sample(1.0, 10.0, true));
        r.push_sample(sample(2.0, 10.0, true));
        assert_eq!(r.attack_sample_count(), 2);
        assert_eq!(r.duration(), 2.0);
        assert_eq!(RunRecord::new().duration(), 0.0);
    }
}
