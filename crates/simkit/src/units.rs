//! Unit conversions and physical constants shared across the workspace.

/// Converts kilometers-per-hour to meters-per-second.
///
/// ```
/// assert_eq!(av_simkit::units::kph_to_mps(36.0), 10.0);
/// ```
pub fn kph_to_mps(kph: f64) -> f64 {
    kph / 3.6
}

/// Converts meters-per-second to kilometers-per-hour.
pub fn mps_to_kph(mps: f64) -> f64 {
    mps * 3.6
}

/// Camera frame rate used by the paper's LGSVL setup (§V-B).
pub const CAMERA_HZ: f64 = 15.0;

/// LiDAR rotation rate used by the paper's LGSVL setup (§V-B).
pub const LIDAR_HZ: f64 = 10.0;

/// GPS update rate used by the paper's LGSVL setup (§V-B).
pub const GPS_HZ: f64 = 12.5;

/// Planning module rate (Apollo plans at ~10 Hz).
pub const PLANNER_HZ: f64 = 10.0;

/// Base simulation tick rate; every sensor/module period is a multiple of it.
pub const SIM_HZ: f64 = 30.0;

/// Base simulation step in seconds.
pub const SIM_DT: f64 = 1.0 / SIM_HZ;

/// The LGSVL/Apollo integration halts simulations once two objects come
/// within 4 m of each other; the paper therefore defines "accident" as the
/// safety potential dropping below this value (§II-C, Def. 5).
pub const ACCIDENT_DELTA_M: f64 = 4.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kph_mps_roundtrip() {
        let v = 45.0;
        assert!((mps_to_kph(kph_to_mps(v)) - v).abs() < 1e-12);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn sensor_rates_divide_sim_rate_sensibly() {
        // The scheduler uses integer microsecond periods; just sanity-check
        // the constants stay in the expected ballpark.
        assert!(CAMERA_HZ > LIDAR_HZ);
        assert!(SIM_HZ >= CAMERA_HZ);
    }
}
