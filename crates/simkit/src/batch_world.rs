//! Structure-of-arrays world state for lockstep multi-session execution.
//!
//! A batch engine advances N independent sessions tick by tick. Stepping N
//! separate [`World`]s touches N scattered `Vec<Actor>` allocations and
//! clones every scripted [`Behavior`] (waypoint scripts heap-allocate) once
//! per actor per tick. [`BatchWorld`] gathers the per-actor kinematics of
//! all lanes into flat per-field arrays (lane-major), steps them in place,
//! and scatters the results back into per-lane [`World`] views that the
//! sensor/planner/safety code reads through the ordinary `&World` API.
//!
//! The integration is bit-identical to [`World::step`]: the same
//! floating-point expressions evaluated in the same per-actor order, and
//! [`Behavior::step`] mutated in place instead of clone-step-assign (which
//! cannot change the result — the clone sees the same state the original
//! would). The per-lane views' `Actor::behavior` fields are *not* scattered
//! back (behaviors live in the batch arrays once gathered); nothing on the
//! session read path consults them.

use crate::behavior::Behavior;
use crate::math::{Pose, Vec2};
use crate::world::World;

/// N worlds advanced in lockstep, stored as per-field arrays.
#[derive(Debug, Clone)]
pub struct BatchWorld {
    /// Per-lane read views, kinematics-scattered after every step.
    views: Vec<World>,
    /// Slot offset of each lane's first actor; `offsets[lane + 1]` ends it.
    offsets: Vec<usize>,
    pos_x: Vec<f64>,
    pos_y: Vec<f64>,
    heading: Vec<f64>,
    speed: Vec<f64>,
    accel: Vec<f64>,
    /// Whether the slot is the lane's ego (integrated from the ADS
    /// actuation rather than a behavior script).
    is_ego: Vec<bool>,
    behaviors: Vec<Behavior>,
}

impl BatchWorld {
    /// Gathers per-lane worlds into the batch layout. Lane indices follow
    /// the input order.
    pub fn new(worlds: Vec<World>) -> Self {
        let mut bw = BatchWorld {
            offsets: Vec::with_capacity(worlds.len() + 1),
            pos_x: Vec::new(),
            pos_y: Vec::new(),
            heading: Vec::new(),
            speed: Vec::new(),
            accel: Vec::new(),
            is_ego: Vec::new(),
            behaviors: Vec::new(),
            views: worlds,
        };
        bw.offsets.push(0);
        for world in &bw.views {
            for actor in world.actors() {
                bw.pos_x.push(actor.pose.position.x);
                bw.pos_y.push(actor.pose.position.y);
                bw.heading.push(actor.pose.heading);
                bw.speed.push(actor.speed);
                bw.accel.push(actor.accel);
                bw.is_ego.push(matches!(actor.behavior, Behavior::Ego));
                bw.behaviors.push(actor.behavior.clone());
            }
            bw.offsets.push(bw.pos_x.len());
        }
        bw
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Whether the batch holds no lanes.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// The lane's world view (kinematics current as of the last
    /// [`BatchWorld::step_lane`] on that lane).
    pub fn lane(&self, lane: usize) -> &World {
        &self.views[lane]
    }

    /// Advances one lane by `dt` seconds, bit-identical to calling
    /// [`World::step`] on that lane's world. Lanes that have retired from
    /// the batch are simply never stepped again — their views freeze at the
    /// tick they ended, exactly like a sequential run that left its loop.
    pub fn step_lane(&mut self, lane: usize, dt: f64, ego_accel: f64) {
        let (start, end) = (self.offsets[lane], self.offsets[lane + 1]);
        for slot in start..end {
            if self.is_ego[slot] {
                let v0 = self.speed[slot];
                let v1 = (v0 + ego_accel * dt).max(0.0);
                // Trapezoidal integration with the clamped speed.
                self.pos_x[slot] += (v0 + v1) / 2.0 * dt;
                self.accel[slot] = (v1 - v0) / dt;
                self.speed[slot] = v1;
            } else {
                let pose = Pose::new(
                    Vec2::new(self.pos_x[slot], self.pos_y[slot]),
                    self.heading[slot],
                );
                let speed0 = self.speed[slot];
                let (pose, speed) = self.behaviors[slot].step(pose, speed0, dt);
                self.accel[slot] = (speed - speed0) / dt;
                self.pos_x[slot] = pose.position.x;
                self.pos_y[slot] = pose.position.y;
                self.heading[slot] = pose.heading;
                self.speed[slot] = speed;
            }
        }
        // Scatter the stepped kinematics into the lane's read view.
        let view = &mut self.views[lane];
        for (actor, slot) in view.actors_slice_mut().iter_mut().zip(start..end) {
            actor.pose.position.x = self.pos_x[slot];
            actor.pose.position.y = self.pos_y[slot];
            actor.pose.heading = self.heading[slot];
            actor.speed = self.speed[slot];
            actor.accel = self.accel[slot];
        }
        view.advance_time(dt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::{Actor, ActorId, ActorKind};
    use crate::behavior::{OnFinish, Waypoint};
    use crate::road::Road;

    fn world(seed: f64) -> World {
        let ego = Actor::new(
            ActorId(0),
            ActorKind::Car,
            Vec2::new(seed, 0.0),
            10.0 + seed,
            Behavior::Ego,
        );
        let mut w = World::new(Road::default(), ego);
        w.add_actor(Actor::new(
            ActorId(1),
            ActorKind::Car,
            Vec2::new(40.0 + seed, 0.1 * seed),
            8.0,
            Behavior::CruiseStraight { speed: 8.0 },
        ))
        .unwrap();
        w.add_actor(Actor::new(
            ActorId(2),
            ActorKind::Pedestrian,
            Vec2::new(25.0, -6.0),
            0.0,
            Behavior::waypoints(
                vec![
                    Waypoint::new(Vec2::new(25.0 + seed, 0.0), 1.4),
                    Waypoint::new(Vec2::new(25.0 + seed, 6.0), 1.4),
                ],
                OnFinish::Stop,
            ),
        ))
        .unwrap();
        w
    }

    fn assert_worlds_bit_identical(a: &World, b: &World, ctx: &str) {
        assert_eq!(a.time_us(), b.time_us(), "{ctx}: time");
        assert_eq!(a.actors().len(), b.actors().len(), "{ctx}: actor count");
        for (x, y) in a.actors().iter().zip(b.actors()) {
            assert_eq!(
                x.pose.position.x.to_bits(),
                y.pose.position.x.to_bits(),
                "{ctx}: pos.x of {}",
                x.id
            );
            assert_eq!(
                x.pose.position.y.to_bits(),
                y.pose.position.y.to_bits(),
                "{ctx}: pos.y of {}",
                x.id
            );
            assert_eq!(
                x.pose.heading.to_bits(),
                y.pose.heading.to_bits(),
                "{ctx}: heading of {}",
                x.id
            );
            assert_eq!(x.speed.to_bits(), y.speed.to_bits(), "{ctx}: speed");
            assert_eq!(x.accel.to_bits(), y.accel.to_bits(), "{ctx}: accel");
        }
    }

    #[test]
    fn step_lane_matches_world_step_bitwise() {
        let dt = 1.0 / 30.0;
        let lanes: Vec<World> = (0..5).map(|i| world(f64::from(i))).collect();
        let mut reference = lanes.clone();
        let mut batch = BatchWorld::new(lanes);
        for tick in 0..400 {
            for (lane, reference) in reference.iter_mut().enumerate() {
                // Different per-lane actuation to keep the lanes distinct.
                let accel = 0.3 * f64::from(tick % 7) - 0.5 * lane as f64;
                reference.step(dt, accel);
                batch.step_lane(lane, dt, accel);
                assert_worlds_bit_identical(
                    reference,
                    batch.lane(lane),
                    &format!("tick {tick} lane {lane}"),
                );
            }
        }
    }

    #[test]
    fn retired_lane_freezes_while_others_advance() {
        let dt = 1.0 / 30.0;
        let lanes: Vec<World> = (0..3).map(|i| world(f64::from(i))).collect();
        let mut batch = BatchWorld::new(lanes);
        for _ in 0..10 {
            for lane in 0..3 {
                batch.step_lane(lane, dt, 0.4);
            }
        }
        let frozen = batch.lane(1).clone();
        for _ in 0..10 {
            batch.step_lane(0, dt, 0.4);
            batch.step_lane(2, dt, 0.4);
        }
        assert_worlds_bit_identical(&frozen, batch.lane(1), "retired lane");
        assert!(batch.lane(0).time_us() > batch.lane(1).time_us());
    }

    #[test]
    fn lanes_with_different_actor_counts() {
        let mut small = world(0.0);
        let _ = small; // lane 0: 3 actors, lane 1: 1 actor (ego only)
        small = World::new(
            Road::default(),
            Actor::new(ActorId(0), ActorKind::Car, Vec2::ZERO, 5.0, Behavior::Ego),
        );
        let lanes = vec![world(1.0), small.clone()];
        let mut batch = BatchWorld::new(lanes);
        let mut reference = world(1.0);
        for _ in 0..50 {
            reference.step(1.0 / 30.0, 1.0);
            small.step(1.0 / 30.0, -1.0);
            batch.step_lane(0, 1.0 / 30.0, 1.0);
            batch.step_lane(1, 1.0 / 30.0, -1.0);
        }
        assert_worlds_bit_identical(&reference, batch.lane(0), "ragged lane 0");
        assert_worlds_bit_identical(&small, batch.lane(1), "ragged lane 1");
    }
}
