//! Road users: the ego vehicle, other vehicles, and pedestrians.

use crate::behavior::Behavior;
use crate::math::{Pose, Vec2};
use serde::{Deserialize, Serialize};

/// Opaque identifier for an actor within a [`crate::world::World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ActorId(pub u32);

impl std::fmt::Display for ActorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "actor#{}", self.0)
    }
}

/// The class of a road user, mirroring the detector's class vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActorKind {
    /// A passenger car (including the ego vehicle).
    Car,
    /// A larger vehicle (bus / SUV); same detection class as `Car`.
    Truck,
    /// A pedestrian.
    Pedestrian,
}

impl ActorKind {
    /// Whether this actor is a vehicle (car or truck) as opposed to a pedestrian.
    pub fn is_vehicle(self) -> bool {
        !matches!(self, ActorKind::Pedestrian)
    }
}

/// Physical extent of an actor in meters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Size {
    /// Extent along the heading direction.
    pub length: f64,
    /// Extent perpendicular to the heading, in the ground plane.
    pub width: f64,
    /// Vertical extent (used by the camera projection).
    pub height: f64,
}

impl Size {
    /// A typical passenger car (similar to the LGSVL sedan asset).
    pub const CAR: Size = Size {
        length: 4.6,
        width: 1.9,
        height: 1.5,
    };
    /// A larger SUV/bus-class vehicle.
    pub const TRUCK: Size = Size {
        length: 6.5,
        width: 2.3,
        height: 2.6,
    };
    /// An adult pedestrian.
    pub const PEDESTRIAN: Size = Size {
        length: 0.5,
        width: 0.6,
        height: 1.75,
    };

    /// The default size for a [`ActorKind`].
    pub fn for_kind(kind: ActorKind) -> Size {
        match kind {
            ActorKind::Car => Size::CAR,
            ActorKind::Truck => Size::TRUCK,
            ActorKind::Pedestrian => Size::PEDESTRIAN,
        }
    }
}

/// A scripted (or ego) road user.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Actor {
    /// Identifier, unique within a world.
    pub id: ActorId,
    /// Detection class of this actor.
    pub kind: ActorKind,
    /// Physical size.
    pub size: Size,
    /// Current pose (position + heading).
    pub pose: Pose,
    /// Current scalar speed along the heading (m/s, non-negative).
    pub speed: f64,
    /// Current scalar acceleration along the heading (m/s²).
    pub accel: f64,
    /// Motion script driving this actor (ignored for the ego).
    pub behavior: Behavior,
}

impl Actor {
    /// Creates an actor with the default size for its kind, heading +x.
    pub fn new(
        id: ActorId,
        kind: ActorKind,
        position: Vec2,
        speed: f64,
        behavior: Behavior,
    ) -> Self {
        Actor {
            id,
            kind,
            size: Size::for_kind(kind),
            pose: Pose::new(position, 0.0),
            speed,
            accel: 0.0,
            behavior,
        }
    }

    /// Velocity vector (heading direction times scalar speed).
    pub fn velocity(&self) -> Vec2 {
        self.pose.forward() * self.speed
    }

    /// Half extents of the axis-aligned bounding footprint, accounting for
    /// the heading (an oriented rectangle's AABB).
    pub fn half_extents(&self) -> Vec2 {
        let (s, c) = self.pose.heading.sin_cos();
        Vec2::new(
            c.abs() * self.size.length / 2.0 + s.abs() * self.size.width / 2.0,
            s.abs() * self.size.length / 2.0 + c.abs() * self.size.width / 2.0,
        )
    }

    /// Lateral interval `[y_min, y_max]` occupied by the footprint.
    pub fn lateral_extent(&self) -> (f64, f64) {
        let hy = self.half_extents().y;
        (self.pose.position.y - hy, self.pose.position.y + hy)
    }

    /// Longitudinal interval `[x_min, x_max]` occupied by the footprint.
    pub fn longitudinal_extent(&self) -> (f64, f64) {
        let hx = self.half_extents().x;
        (self.pose.position.x - hx, self.pose.position.x + hx)
    }
}

/// Euclidean separation between the AABB footprints of two actors.
///
/// Returns 0 when the footprints overlap. This is the quantity the LGSVL
/// bridge monitors: the simulator halt at < 4 m separation is reproduced by
/// the run loop in [`crate::world::World::separation_to_ego`] callers.
pub fn separation(a: &Actor, b: &Actor) -> f64 {
    let (ax0, ax1) = a.longitudinal_extent();
    let (ay0, ay1) = a.lateral_extent();
    let (bx0, bx1) = b.longitudinal_extent();
    let (by0, by1) = b.lateral_extent();
    let dx = (bx0 - ax1).max(ax0 - bx1).max(0.0);
    let dy = (by0 - ay1).max(ay0 - by1).max(0.0);
    dx.hypot(dy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::Behavior;

    fn car_at(x: f64, y: f64) -> Actor {
        Actor::new(
            ActorId(1),
            ActorKind::Car,
            Vec2::new(x, y),
            0.0,
            Behavior::Parked,
        )
    }

    #[test]
    fn half_extents_axis_aligned() {
        let a = car_at(0.0, 0.0);
        let he = a.half_extents();
        assert!((he.x - 2.3).abs() < 1e-9);
        assert!((he.y - 0.95).abs() < 1e-9);
    }

    #[test]
    fn half_extents_rotated_90deg() {
        let mut a = car_at(0.0, 0.0);
        a.pose.heading = std::f64::consts::FRAC_PI_2;
        let he = a.half_extents();
        assert!((he.x - 0.95).abs() < 1e-9);
        assert!((he.y - 2.3).abs() < 1e-9);
    }

    #[test]
    fn separation_longitudinal() {
        let a = car_at(0.0, 0.0);
        let b = car_at(10.0, 0.0);
        // 10 m center distance minus two half-lengths (2.3 each).
        assert!((separation(&a, &b) - 5.4).abs() < 1e-9);
    }

    #[test]
    fn separation_overlapping_is_zero() {
        let a = car_at(0.0, 0.0);
        let b = car_at(1.0, 0.5);
        assert_eq!(separation(&a, &b), 0.0);
    }

    #[test]
    fn separation_diagonal() {
        let a = car_at(0.0, 0.0);
        let b = car_at(7.6, 5.9); // 3 m longitudinal gap, 4 m lateral gap
        let s = separation(&a, &b);
        assert!((s - 5.0).abs() < 1e-9, "s = {s}");
    }

    #[test]
    fn velocity_follows_heading() {
        let mut a = car_at(0.0, 0.0);
        a.speed = 2.0;
        a.pose.heading = std::f64::consts::FRAC_PI_2;
        let v = a.velocity();
        assert!(v.x.abs() < 1e-9 && (v.y - 2.0).abs() < 1e-9);
    }
}
