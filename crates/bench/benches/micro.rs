//! Component microbenchmarks.

use av_neural::mlp::Mlp;
use av_perception::calibration::DetectorCalibration;
use av_perception::detector::Detector;
use av_perception::hungarian;
use av_perception::kalman::{Kalman, KalmanConfig};
use av_sensing::bbox::BBox;
use av_sensing::camera::Camera;
use av_sensing::frame::capture;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use robotack::patch;
use robotack_bench::bench_world;
use std::hint::black_box;

fn bench_hungarian(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    for n in [4usize, 8, 16, 32] {
        let mut rng = StdRng::seed_from_u64(7);
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..n).map(|_| rng.random_range(0.0..10.0)).collect())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &cost, |b, cost| {
            b.iter(|| hungarian::solve(black_box(cost)))
        });
    }
    group.finish();
}

fn bench_kalman(c: &mut Criterion) {
    c.bench_function("kalman_predict_update", |b| {
        let mut kf = Kalman::new(KalmanConfig::default(), 100.0, 100.0);
        b.iter(|| {
            kf.predict(black_box(1.0 / 15.0));
            kf.update(black_box(101.0), black_box(99.5));
            black_box(kf.position())
        })
    });
}

fn bench_detector(c: &mut Criterion) {
    let world = bench_world();
    let camera = Camera::default();
    let frame = capture(&camera, &world, 0, false);
    c.bench_function("detector_frame_5_objects", |b| {
        let mut detector = Detector::new(DetectorCalibration::paper());
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| black_box(detector.detect(black_box(&frame), &mut rng)))
    });
}

fn bench_camera(c: &mut Criterion) {
    let world = bench_world();
    let camera = Camera::default();
    let ego = world.ego();
    let target = world.actor(av_simkit::actor::ActorId(1)).expect("actor");
    c.bench_function("camera_project", |b| {
        b.iter(|| black_box(camera.project(black_box(ego), black_box(target))))
    });
    let bbox = BBox::from_center(960.0, 620.0, 120.0, 90.0);
    c.bench_function("camera_back_project_height", |b| {
        b.iter(|| black_box(camera.back_project_with_height(black_box(&bbox), 1.5)))
    });
}

fn bench_nn(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let net = Mlp::paper_architecture(5, &mut rng);
    let input = [20.0, -5.0, 0.2, -0.1, 40.0];
    c.bench_function("nn_forward_100_100_50", |b| {
        b.iter(|| black_box(net.forward(black_box(&input))))
    });
    // The batched-inference kernel at the batch engine's row counts: the
    // per-row cost must drop well below the scalar forward for cross-session
    // GEMM batching to pay off.
    for rows in [4usize, 16] {
        let mut batch = av_neural::matrix::Matrix::zeros(rows, 5);
        for r in 0..rows {
            batch.row_mut(r).copy_from_slice(&input);
        }
        let mut scratch = av_neural::matrix::Matrix::zeros(0, 0);
        let mut out = av_neural::matrix::Matrix::zeros(0, 0);
        c.bench_function(&format!("nn_forward_batch_{rows}_rows"), |b| {
            b.iter(|| {
                net.forward_batch_into(black_box(&batch), &mut scratch, &mut out);
                black_box(out.get(0, 0))
            })
        });
    }
}

fn bench_patch(c: &mut Criterion) {
    let world = bench_world();
    let camera = Camera::default();
    let frame = capture(&camera, &world, 0, true);
    let truth = *frame
        .truth_for(av_simkit::actor::ActorId(1))
        .expect("car in view");
    let raster = frame.raster.expect("raster");
    c.bench_function("patch_apply_shift", |b| {
        b.iter_batched(
            || raster.clone(),
            |mut r| patch::apply_shift(&mut r, &truth.bbox, black_box(60.0)),
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("patch_detect", |b| {
        b.iter(|| black_box(patch::detect(black_box(&raster), &truth.bbox)))
    });
}

criterion_group!(
    benches,
    bench_hungarian,
    bench_kalman,
    bench_detector,
    bench_camera,
    bench_nn,
    bench_patch
);
criterion_main!(benches);
