//! Pipeline-level benches: perception step, ADS cycle, and the malware's
//! per-frame overhead (§IV-D stresses the malware's small footprint — here
//! we measure it directly).

use av_perception::pipeline::{Perception, PerceptionConfig};
use av_planning::ads::{Ads, AdsConfig};
use av_sensing::camera::Camera;
use av_sensing::frame::{capture, capture_into, CameraFrame};
use av_sensing::lidar::Lidar;
use av_simkit::math::Vec2;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use robotack::malware::{Attacker, RoboTack, RoboTackConfig};
use robotack::safety_hijacker::KinematicOracle;
use robotack_bench::bench_world;
use std::hint::black_box;

fn bench_perception_step(c: &mut Criterion) {
    let world = bench_world();
    let camera = Camera::default();
    let frame = capture(&camera, &world, 0, false);
    c.bench_function("perception_camera_step", |b| {
        let mut p = Perception::new(PerceptionConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| p.on_camera_frame(black_box(&frame), Vec2::ZERO, &mut rng))
    });
    let lidar = Lidar::default();
    c.bench_function("perception_lidar_step", |b| {
        let mut p = Perception::new(PerceptionConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let scan = lidar.scan(&world, &mut rng);
        b.iter(|| p.on_lidar(black_box(&scan)))
    });
}

fn bench_ads_cycle(c: &mut Criterion) {
    let world = bench_world();
    let camera = Camera::default();
    let frame = capture(&camera, &world, 0, false);
    c.bench_function("ads_camera_plan_control", |b| {
        let mut ads = Ads::new(AdsConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| {
            ads.on_camera_frame(black_box(&frame), &mut rng);
            ads.plan_tick();
            black_box(ads.control_tick(1.0 / 30.0))
        })
    });
}

/// The malware's monitoring cost per tapped frame — the quantity that must
/// stay negligible to evade resource-usage monitors (§IV-D).
fn bench_malware_overhead(c: &mut Criterion) {
    let world = bench_world();
    let camera = Camera::default();
    c.bench_function("robotack_process_frame_monitoring", |b| {
        let mut rt = RoboTack::new(RoboTackConfig::default(), KinematicOracle::default());
        let mut rng = StdRng::seed_from_u64(1);
        let mut seq = 0;
        b.iter(|| {
            let mut frame = capture(&camera, &world, seq, false);
            seq += 1;
            rt.process_frame(black_box(&mut frame), 12.5, &mut rng);
        })
    });
}

/// The full camera hot path over an *advancing* world: frame capture plus
/// the complete perception step (detector, Hungarian association, tracker,
/// fusion). Unlike `perception_camera_step`, which re-feeds one fixed frame
/// and therefore only measures the stale-`seq` early-out after the first
/// iteration, here every frame is fresh and the tracker does real
/// association work. The two variants isolate the steady-state buffer
/// reuse: `scratch_reuse` captures into one long-lived `CameraFrame`
/// (allocation-free after warm-up), `alloc_per_frame` allocates a fresh
/// frame every iteration the way the session loop used to.
fn bench_camera_variant(c: &mut Criterion, name: &str, with_raster: bool, reuse: bool) {
    const DT: f64 = 1.0 / 15.0;
    c.bench_function(name, |b| {
        let camera = Camera::default();
        let mut world = bench_world();
        let mut frame = CameraFrame::default();
        let mut p = Perception::new(PerceptionConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let mut seq = 0;
        b.iter(|| {
            if world.time() > 4.0 {
                world = bench_world();
                p.reset();
            }
            world.step(DT, 0.0);
            if reuse {
                capture_into(&camera, &world, seq, with_raster, &mut frame);
                p.on_camera_frame(black_box(&frame), Vec2::ZERO, &mut rng);
            } else {
                let fresh = capture(&camera, &world, seq, with_raster);
                p.on_camera_frame(black_box(&fresh), Vec2::ZERO, &mut rng);
            }
            seq += 1;
        })
    });
}

fn bench_camera_path(c: &mut Criterion) {
    bench_camera_variant(c, "camera_path_scratch_reuse", false, true);
    bench_camera_variant(c, "camera_path_alloc_per_frame", false, false);
    // The raster pair isolates the big allocation: a 192×108 f32 raster is
    // ~83 KB per frame when allocated fresh vs. a clear+refill on reuse.
    bench_camera_variant(c, "camera_path_raster_reuse", true, true);
    bench_camera_variant(c, "camera_path_raster_alloc", true, false);
}

/// Ablation: binary-search K (Eq. 2) vs the exhaustive linear scan.
fn bench_k_search(c: &mut Criterion) {
    use robotack::safety_hijacker::{
        AttackFeatures, KinematicOracle, SafetyHijacker, SafetyHijackerConfig,
    };
    let sh = SafetyHijacker::new(KinematicOracle::default(), SafetyHijackerConfig::default());
    let f = AttackFeatures {
        delta: 25.0,
        v_rel_lon: -5.0,
        v_rel_lat: 0.0,
        a_rel_lon: 0.0,
    };
    c.bench_function("sh_decide_binary_search", |b| {
        b.iter(|| black_box(sh.decide(&f)))
    });
    c.bench_function("sh_decide_linear_scan", |b| {
        b.iter(|| black_box(sh.decide_linear(&f)))
    });
}

criterion_group!(
    benches,
    bench_perception_step,
    bench_ads_cycle,
    bench_malware_overhead,
    bench_camera_path,
    bench_k_search
);
criterion_main!(benches);
