//! GEMM micro-kernel benches: naive vs register-blocked vs cache-tiled at
//! the paper's training shapes.
//!
//! Shapes: the oracle trains the 5-100-100-50-1 architecture with batch 16
//! (`mlp_train_epoch` in the `suite` bench is the end-to-end twin), and the
//! issue's canonical kernel shapes 9×64 / 64×64 / 64×1 at batch 32 cover
//! the small-reduction, square, and thin-output regimes. Every family runs
//! all three implementations so the blocked-vs-naive win and the tiled
//! delta stay visible in one report.

use av_neural::gemm;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn filled(len: usize, rng: &mut StdRng) -> Vec<f64> {
    (0..len)
        .map(|_| av_simkit::rng::normal(rng, 0.0, 1.0))
        .collect()
}

/// (label, m, n, reduction) — `nt` computes (m×k)·(n×k)ᵀ, `tn` computes
/// (r×m)ᵀ·(r×n), `nn` computes (m×k)·(k×n); the tuple's last element is the
/// reduction dimension in each family.
const SHAPES: &[(&str, usize, usize, usize)] = &[
    ("b32_9x64", 32, 64, 9),
    ("b32_64x64", 32, 64, 64),
    ("b32_64x1", 32, 1, 64),
    ("b16_100x100", 16, 100, 100),
    // The paper net's first (5→100) and last (50→1) layers at batch 16:
    // tiny reduction and single-column output, the shapes dominated by the
    // remainder bands rather than the 4×8 tile interior.
    ("b16_100x5", 16, 100, 5),
    ("b16_1x50", 16, 1, 50),
];

fn bench_nt(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(101);
    let mut group = c.benchmark_group("gemm_nt");
    for &(label, m, n, k) in SHAPES {
        let a = filled(m * k, &mut rng);
        let b = filled(n * k, &mut rng);
        let mut out = vec![0.0; m * n];
        group.bench_function(format!("{label}/naive"), |bch| {
            bch.iter(|| gemm::nt_naive(black_box(&a), black_box(&b), &mut out, m, n, k))
        });
        group.bench_function(format!("{label}/blocked"), |bch| {
            bch.iter(|| gemm::nt_blocked(black_box(&a), black_box(&b), &mut out, m, n, k))
        });
        group.bench_function(format!("{label}/tiled"), |bch| {
            bch.iter(|| {
                gemm::nt_tiled(
                    black_box(&a),
                    black_box(&b),
                    &mut out,
                    m,
                    n,
                    k,
                    gemm::K_PANEL,
                )
            })
        });
    }
    group.finish();
}

fn bench_tn(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(102);
    let mut group = c.benchmark_group("gemm_tn");
    for &(label, m, n, r) in SHAPES {
        let a = filled(r * m, &mut rng);
        let b = filled(r * n, &mut rng);
        let mut out = vec![0.0; m * n];
        group.bench_function(format!("{label}/naive"), |bch| {
            bch.iter(|| gemm::tn_naive(black_box(&a), black_box(&b), &mut out, r, m, n))
        });
        group.bench_function(format!("{label}/blocked"), |bch| {
            bch.iter(|| gemm::tn_blocked(black_box(&a), black_box(&b), &mut out, r, m, n))
        });
        group.bench_function(format!("{label}/tiled"), |bch| {
            bch.iter(|| {
                gemm::tn_tiled(
                    black_box(&a),
                    black_box(&b),
                    &mut out,
                    r,
                    m,
                    n,
                    gemm::K_PANEL,
                )
            })
        });
    }
    group.finish();
}

fn bench_nn(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(103);
    let mut group = c.benchmark_group("gemm_nn");
    for &(label, m, n, k) in SHAPES {
        let a = filled(m * k, &mut rng);
        let b = filled(k * n, &mut rng);
        let mut out = vec![0.0; m * n];
        group.bench_function(format!("{label}/naive"), |bch| {
            bch.iter(|| gemm::nn_naive(black_box(&a), black_box(&b), &mut out, m, k, n))
        });
        group.bench_function(format!("{label}/blocked"), |bch| {
            bch.iter(|| gemm::nn_blocked(black_box(&a), black_box(&b), &mut out, m, k, n))
        });
        group.bench_function(format!("{label}/tiled"), |bch| {
            bch.iter(|| {
                gemm::nn_tiled(
                    black_box(&a),
                    black_box(&b),
                    &mut out,
                    m,
                    k,
                    n,
                    gemm::K_PANEL,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_nt, bench_tn, bench_nn);
criterion_main!(benches);
