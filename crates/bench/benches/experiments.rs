//! One bench per paper table/figure: measures the regeneration work itself
//! (sized down to bench-friendly volumes; the experiment binaries produce
//! the full-size outputs).

use av_experiments::characterize::characterize_detector;
use av_experiments::prelude::*;
use av_experiments::report::render_table1;
use av_experiments::stats::{fit_exponential, fit_normal};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// Table I: the scenario-matching map (pure rule evaluation + rendering).
fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_scenario_matcher", |b| {
        b.iter(|| black_box(render_table1()))
    });
}

/// Table II (one cell): a full attacked simulation run, end to end.
fn bench_table2_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("run_ds1_golden", |b| {
        b.iter(|| black_box(SimSession::builder(ScenarioId::Ds1).seed(3).build().run()))
    });
    group.bench_function("run_ds2_robotack_kinematic", |b| {
        b.iter(|| {
            black_box(
                SimSession::builder(ScenarioId::Ds2)
                    .seed(3)
                    .attacker(AttackerSpec::RoboTack {
                        vector: Some(AttackVector::MoveOut),
                        oracle: OracleSpec::Kinematic,
                    })
                    .build()
                    .run(),
            )
        })
    });
    group.bench_function("run_ds5_random_baseline", |b| {
        b.iter(|| {
            black_box(
                SimSession::builder(ScenarioId::Ds5)
                    .seed(3)
                    .attacker(AttackerSpec::Random)
                    .build()
                    .run(),
            )
        })
    });
    group.finish();
}

/// Fig. 5: detector characterization + distribution fitting.
fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("characterize_1500_frames", |b| {
        b.iter(|| black_box(characterize_detector(1500, 7)))
    });
    let data = characterize_detector(3000, 7);
    group.bench_function("fit_distributions", |b| {
        b.iter(|| {
            black_box(fit_exponential(&data.veh_streaks));
            black_box(fit_normal(&data.veh_dx));
            black_box(fit_normal(&data.ped_dx));
        })
    });
    group.finish();
}

/// Fig. 6: an R vs R-w/o-SH pair on one seed (min-δ extraction included).
fn bench_fig6_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("r_vs_nosh_pair", |b| {
        b.iter(|| {
            let r = SimSession::builder(ScenarioId::Ds1)
                .seed(5)
                .attacker(AttackerSpec::RoboTack {
                    vector: Some(AttackVector::Disappear),
                    oracle: OracleSpec::Kinematic,
                })
                .build()
                .run();
            let nosh = SimSession::builder(ScenarioId::Ds1)
                .seed(5)
                .attacker(AttackerSpec::RoboTackNoSh {
                    vector: Some(AttackVector::Disappear),
                })
                .build()
                .run();
            black_box((r.min_delta_post_attack, nosh.min_delta_post_attack))
        })
    });
    group.finish();
}

/// Fig. 7: a K′ measurement run (timed attack with ADS-side K′ tracking).
fn bench_fig7_kprime(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("kprime_measurement_run", |b| {
        b.iter(|| {
            let out = SimSession::builder(ScenarioId::Ds3)
                .seed(0)
                .attacker(AttackerSpec::AtDelta {
                    vector: Some(AttackVector::MoveIn),
                    delta_inject: 8.0,
                    k: 40,
                })
                .build()
                .run();
            black_box(out.k_prime_ads)
        })
    });
    group.finish();
}

/// Fig. 8: a δ_inject/k sweep cell (the NN-quality ground-truth generator).
fn bench_fig8_sweep_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("sweep_cell_run", |b| {
        b.iter(|| {
            let out = SimSession::builder(ScenarioId::Ds1)
                .seed(9)
                .attacker(AttackerSpec::AtDelta {
                    vector: Some(AttackVector::MoveOut),
                    delta_inject: 30.0,
                    k: 50,
                })
                .build()
                .run();
            black_box(out.min_delta_attack_window)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_table2_cell,
    bench_fig5,
    bench_fig6_pair,
    bench_fig7_kprime,
    bench_fig8_sweep_cell
);
criterion_main!(benches);
