//! Suite-throughput benchmarks: campaign dispatch, oracle-cache lookups,
//! minibatch MLP training, and the DAG-orchestrator overhead — the levers
//! behind suite wall-clock.

use av_experiments::campaign::{default_threads, run_campaign_dispatch, DispatchMode};
use av_experiments::oracle_cache::{cache_key, OracleCache};
use av_experiments::prelude::*;
use av_experiments::train_sh::{train_oracle_on, SweepConfig};
use av_neural::mlp::Mlp;
use av_neural::train::{train, Dataset, TrainConfig};
use av_suite::{execute, Dag, ExecOptions, Job, JobOutcome};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_campaign_dispatch(c: &mut Criterion) {
    let campaign = Campaign::new(
        "bench-dispatch",
        ScenarioId::Ds1,
        AttackerSpec::None,
        8,
        900,
    );
    let mut group = c.benchmark_group("campaign_dispatch");
    group.sample_size(10);
    let cases = [
        ("stealing_1_thread", 1, DispatchMode::WorkStealing),
        (
            "stealing_default_threads",
            default_threads(),
            DispatchMode::WorkStealing,
        ),
        (
            "chunking_default_threads",
            default_threads(),
            DispatchMode::StaticChunks,
        ),
        (
            "batched_4_1_thread",
            1,
            DispatchMode::Batched { batch_size: 4 },
        ),
        (
            "batched_8_default_threads",
            default_threads(),
            DispatchMode::Batched { batch_size: 8 },
        ),
    ];
    for (name, threads, mode) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), &threads, |b, &t| {
            b.iter(|| black_box(run_campaign_dispatch(black_box(&campaign), t, mode).unwrap()))
        });
    }
    group.finish();
}

/// The NN-oracle RoboTack campaign — the paper's primary workload, and the
/// one the lockstep batch engine accelerates: pre-launch trigger monitoring
/// runs a k-search against the safety-hijacker MLP on every camera frame,
/// which the batch engine resolves as cross-session GEMM rounds.
fn bench_campaign_dispatch_nn(c: &mut Criterion) {
    let oracle = train_oracle_on(&synthetic_dataset(128)).expect("synthetic dataset trains");
    let campaign = Campaign::new(
        "bench-dispatch-nn",
        ScenarioId::Ds1,
        AttackerSpec::RoboTack {
            vector: Some(AttackVector::Disappear),
            oracle: OracleSpec::Nn(oracle.oracle),
        },
        32,
        900,
    );
    let mut group = c.benchmark_group("campaign_dispatch_nn");
    group.sample_size(10);
    let cases = [
        ("sequential_1_thread", 1, DispatchMode::WorkStealing),
        ("batched_16", 1, DispatchMode::Batched { batch_size: 16 }),
        ("batched_32", 1, DispatchMode::Batched { batch_size: 32 }),
    ];
    for (name, threads, mode) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), &threads, |b, &t| {
            b.iter(|| black_box(run_campaign_dispatch(black_box(&campaign), t, mode).unwrap()))
        });
    }
    group.finish();
}

fn synthetic_dataset(n: usize) -> Dataset {
    Dataset::from_rows((0..n).map(|i| {
        let delta = 5.0 + (i % 20) as f64 * 2.0;
        let k = (i % 9) as f64 * 10.0;
        (vec![delta, -3.0, 0.5, -0.1, k], vec![delta - 0.1 * k])
    }))
}

/// One training epoch of the paper network, per-example vs minibatch.
fn bench_mlp_epoch(c: &mut Criterion) {
    let data = synthetic_dataset(256);
    let mut group = c.benchmark_group("mlp_train_epoch");
    group.sample_size(10);
    for batch in [1usize, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("batch{batch}")),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    let mut rng = StdRng::seed_from_u64(0x0011_ACED);
                    let mut net = Mlp::paper_architecture(5, &mut rng);
                    train(
                        &mut net,
                        &data,
                        &TrainConfig {
                            epochs: 1,
                            batch_size: batch,
                            learning_rate: 1e-3,
                        },
                        &mut rng,
                    );
                    black_box(net)
                })
            },
        );
    }
    group.finish();
}

/// The fused training step against its split reference, plus the bare
/// interleaved Adam pass at paper-net size (15 801 parameters).
///
/// `fused_epoch` is the production `train()` path: diff-fused forward over
/// the persistent `Wᵀ` shadow, then backward GEMMs whose epilogues run the
/// ReLU/dropout backward, the Adam update, and the shadow refresh.
/// `unfused_epoch` is the split twin — `backward_into` followed by a
/// cursor-order `update_slice` sweep — which is bit-identical in outcome
/// (pinned by `fused_backward_adam_matches_split_reference`), so the delta
/// between the two is pure pipeline-fusion effect.
fn bench_training_pipeline(c: &mut Criterion) {
    use av_neural::matrix::Matrix;
    use av_neural::mlp::TrainScratch;
    use av_neural::optim::Adam;
    use rand::seq::SliceRandom;

    let data = synthetic_dataset(128);
    let mut group = c.benchmark_group("training_pipeline");
    group.sample_size(10);
    group.bench_function("fused_epoch", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(0x0011_ACED);
            let mut net = Mlp::paper_architecture(5, &mut rng);
            train(
                &mut net,
                &data,
                &TrainConfig {
                    epochs: 1,
                    batch_size: 16,
                    learning_rate: 1e-3,
                },
                &mut rng,
            );
            black_box(net)
        })
    });
    group.bench_function("unfused_epoch", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(0x0011_ACED);
            let mut net = Mlp::paper_architecture(5, &mut rng);
            let mut adam = Adam::new(net.param_count(), 1e-3);
            let mut order: Vec<usize> = (0..data.len()).collect();
            order.shuffle(&mut rng);
            let (in_dim, out_dim) = (net.input_dim(), net.output_dim());
            let mut x = Matrix::zeros(0, 0);
            let mut y = Matrix::zeros(0, 0);
            let mut dl = Matrix::zeros(0, 0);
            let mut scratch = TrainScratch::new();
            for chunk in order.chunks(16) {
                let rows = chunk.len();
                x.gather_rows(in_dim, &data.inputs, chunk);
                y.gather_rows(out_dim, &data.targets, chunk);
                net.forward_train_diff_into(&x, &y, &mut rng, &mut scratch);
                let n = (rows * out_dim) as f64;
                dl.reshape(rows, out_dim);
                for r in 0..rows {
                    for col in 0..out_dim {
                        dl.set(r, col, 2.0 * scratch.output().get(r, col) / n);
                    }
                }
                net.backward_into(&dl, &mut scratch);
                let mut step = adam.step();
                net.apply_grads_slices(scratch.grads(), |p, g| step.update_slice(p, g));
            }
            black_box(net)
        })
    });
    let mut rng = StdRng::seed_from_u64(0xADA0);
    let mut probe = Mlp::paper_architecture(5, &mut rng);
    let count = probe.param_count();
    let mut params: Vec<f64> = (0..count).map(|i| (i as f64 * 0.13).sin()).collect();
    let grads: Vec<f64> = (0..count).map(|i| (i as f64 * 0.29).cos()).collect();
    let mut adam = Adam::new(count, 1e-3);
    group.bench_function("adam_step", |b| {
        b.iter(|| {
            adam.step()
                .update_slice(black_box(&mut params), black_box(&grads))
        })
    });
    black_box(&mut probe);
    group.finish();
}

/// A warm oracle-cache lookup (read + checked decode of a full snapshot) vs
/// what it replaces: training the oracle from the already-collected dataset.
fn bench_oracle_cache(c: &mut Criterion) {
    let data = synthetic_dataset(128);
    let oracle = train_oracle_on(&data).expect("synthetic dataset trains");
    let dir = std::env::temp_dir().join(format!("oracle-cache-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cache = OracleCache::at(&dir);
    let key = cache_key(ScenarioId::Ds1, AttackVector::MoveOut, &SweepConfig::tiny());
    cache.store(key, &oracle);

    let mut group = c.benchmark_group("oracle_cache");
    group.bench_function("warm_lookup", |b| {
        b.iter(|| black_box(cache.lookup(black_box(key)).expect("warm hit")))
    });
    group.sample_size(10);
    group.bench_function("train_from_dataset", |b| {
        b.iter(|| black_box(train_oracle_on(black_box(&data)).expect("trains")))
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The paper DAG's shape (6 datasets → 6 oracles → 8 reports) with no-op
/// bodies: pure scheduling + manifest overhead per `suite` run. Must stay
/// negligible next to the jobs themselves (milliseconds vs minutes).
fn orchestrator_dag() -> Dag {
    let mk = |id: String| Job::new(id, JobOutcome::default);
    let mut jobs = Vec::new();
    for i in 0..6 {
        jobs.push(mk(format!("dataset:{i}")));
    }
    for i in 0..6 {
        jobs.push(mk(format!("oracle:{i}")).dep(format!("dataset:{i}")));
    }
    for report in [
        "table2", "fig5", "fig6", "fig7", "fig8", "abl", "def", "res",
    ] {
        jobs.push(
            mk(report.to_string())
                .deps((0..6).map(|i| format!("oracle:{i}")))
                .emits_stdout(),
        );
    }
    Dag::new(jobs).expect("valid bench DAG")
}

fn bench_orchestrator(c: &mut Criterion) {
    let dir = std::env::temp_dir().join(format!("suite-orch-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench dir");

    let mut group = c.benchmark_group("suite_orchestrator");
    for workers in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("noop_paper_dag_{workers}w")),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    black_box(
                        execute(&orchestrator_dag(), &ExecOptions::new().workers(workers))
                            .expect("bench run"),
                    )
                })
            },
        );
    }
    // With the manifest: adds one JSON append + flush per job, and the
    // resume load on startup.
    group.bench_function("noop_paper_dag_manifest", |b| {
        let path = dir.join("manifest.jsonl");
        b.iter(|| {
            let _ = std::fs::remove_file(&path);
            black_box(
                execute(
                    &orchestrator_dag(),
                    &ExecOptions::new().workers(2).manifest(path.clone()),
                )
                .expect("bench run"),
            )
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_campaign_dispatch,
    bench_campaign_dispatch_nn,
    bench_mlp_epoch,
    bench_training_pipeline,
    bench_oracle_cache,
    bench_orchestrator
);
criterion_main!(benches);
