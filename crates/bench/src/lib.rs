//! # robotack-bench — benchmark fixtures
//!
//! Shared world/pipeline builders for the Criterion benches. The benches
//! themselves live in `benches/`:
//!
//! - `micro` — component microbenchmarks (Hungarian, Kalman, detector, NN,
//!   patch, camera projection).
//! - `pipeline` — perception/ADS step latency and the malware's per-frame
//!   overhead (the paper stresses the malware's small footprint, §IV-D).
//! - `experiments` — one bench per paper table/figure: the regeneration
//!   work for Table I/II and Figs. 5–8, sized down to bench-friendly runs.

#![warn(missing_docs)]

use av_simkit::actor::{Actor, ActorId, ActorKind};
use av_simkit::behavior::Behavior;
use av_simkit::math::Vec2;
use av_simkit::road::Road;
use av_simkit::world::World;

/// A representative mixed scene: two cars, a truck, and two pedestrians.
pub fn bench_world() -> World {
    let ego = Actor::new(ActorId(0), ActorKind::Car, Vec2::ZERO, 12.5, Behavior::Ego);
    let mut world = World::new(Road::default(), ego);
    let actors = [
        (1, ActorKind::Car, 30.0, 0.0, 7.0),
        (2, ActorKind::Car, 55.0, 3.5, 9.0),
        (3, ActorKind::Truck, 75.0, -3.5, 0.0),
        (4, ActorKind::Pedestrian, 25.0, -4.5, 0.0),
        (5, ActorKind::Pedestrian, 45.0, 4.5, 0.0),
    ];
    for (id, kind, x, y, v) in actors {
        let behavior = if v > 0.0 {
            Behavior::CruiseStraight { speed: v }
        } else {
            Behavior::Parked
        };
        world
            .add_actor(Actor::new(ActorId(id), kind, Vec2::new(x, y), v, behavior))
            .expect("unique ids");
    }
    world
}

#[cfg(test)]
mod tests {
    #[test]
    fn bench_world_builds() {
        let w = super::bench_world();
        assert_eq!(w.actors().len(), 6);
    }
}
