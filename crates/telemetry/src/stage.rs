//! The instrumented pipeline stages.

/// One timed stage of the simulation pipeline.
///
/// Each variant corresponds to a `Telemetry::time` call site somewhere in
/// the workspace; the per-stage duration histograms in the metrics registry
/// are indexed by this enum, and the `trace` binary's latency table prints
/// one row per stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// `simkit::scheduler::Scheduler::advance_to` — multi-rate dispatch.
    SchedulerAdvance,
    /// GPS/IMU fix synthesis and delivery.
    GpsSample,
    /// Camera frame capture (world → truth boxes).
    CameraCapture,
    /// LiDAR sweep synthesis.
    LidarScan,
    /// The sensor tap (fault injector) between capture and delivery.
    FaultTap,
    /// The attacker's man-in-the-middle frame hook.
    AttackerFrame,
    /// ADS perception: camera branch (detect → track → fuse).
    PerceptionCamera,
    /// ADS perception: LiDAR branch (fusion refinement).
    PerceptionLidar,
    /// One planning cycle (world model → actuation target).
    PlannerTick,
    /// One 30 Hz control cycle (PID smoothing).
    ControlTick,
    /// World physics step.
    WorldStep,
    /// A whole end-to-end run.
    Run,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 12] = [
        Stage::SchedulerAdvance,
        Stage::GpsSample,
        Stage::CameraCapture,
        Stage::LidarScan,
        Stage::FaultTap,
        Stage::AttackerFrame,
        Stage::PerceptionCamera,
        Stage::PerceptionLidar,
        Stage::PlannerTick,
        Stage::ControlTick,
        Stage::WorldStep,
        Stage::Run,
    ];

    /// Number of stages (registry array size).
    pub const COUNT: usize = Stage::ALL.len();

    /// Dense index of this stage (0..[`Stage::COUNT`]).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used in reports and the JSONL schema.
    pub fn name(self) -> &'static str {
        match self {
            Stage::SchedulerAdvance => "scheduler_advance",
            Stage::GpsSample => "gps_sample",
            Stage::CameraCapture => "camera_capture",
            Stage::LidarScan => "lidar_scan",
            Stage::FaultTap => "fault_tap",
            Stage::AttackerFrame => "attacker_frame",
            Stage::PerceptionCamera => "perception_camera",
            Stage::PerceptionLidar => "perception_lidar",
            Stage::PlannerTick => "planner_tick",
            Stage::ControlTick => "control_tick",
            Stage::WorldStep => "world_step",
            Stage::Run => "run",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
        }
        assert_eq!(Stage::COUNT, 12);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Stage::COUNT);
    }
}
