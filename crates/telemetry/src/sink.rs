//! Trace sinks: where the event stream goes.

use crate::event::TraceRecord;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::{Arc, Mutex, MutexGuard};

/// A consumer of the structured event stream.
///
/// Sinks receive records in emission order with gap-free sequence numbers.
/// `record` must be cheap relative to the stage being traced — expensive
/// sinks (files) should buffer and rely on [`TraceSink::flush`].
pub trait TraceSink {
    /// Consumes one record.
    fn record(&mut self, rec: &TraceRecord);

    /// Flushes any buffered output (called at end of run / on drop of the
    /// owning session).
    fn flush(&mut self) {}
}

/// The discarding sink: every record vanishes. Useful to measure the cost
/// of event *construction* alone, and as an explicit "trace nothing" value
/// where an API wants a sink.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _rec: &TraceRecord) {}
}

/// A bounded in-memory sink: keeps the most recent `capacity` records,
/// counting (not storing) whatever overflowed. The flight-recorder shape —
/// a crashing run's last seconds are always retained.
#[derive(Debug, Clone, Default)]
pub struct RingBufferSink {
    capacity: usize,
    buf: VecDeque<TraceRecord>,
    dropped: u64,
}

impl RingBufferSink {
    /// A ring holding at most `capacity` records (0 = drop everything).
    pub fn new(capacity: usize) -> RingBufferSink {
        RingBufferSink {
            capacity,
            buf: VecDeque::with_capacity(capacity.min(4096)),
            dropped: 0,
        }
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> &VecDeque<TraceRecord> {
        &self.buf
    }

    /// How many records were evicted (or refused, for capacity 0).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drains the retained records, oldest first.
    pub fn drain(&mut self) -> Vec<TraceRecord> {
        self.buf.drain(..).collect()
    }
}

impl TraceSink for RingBufferSink {
    fn record(&mut self, rec: &TraceRecord) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(rec.clone());
    }
}

/// A JSONL sink: one [`TraceRecord::to_json`] line per record into any
/// [`Write`] (a file, a `Vec<u8>`, stdout). Buffering is the writer's
/// responsibility; wrap files in `BufWriter`.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    writer: W,
    lines: u64,
    errored: bool,
}

impl<W: Write> JsonlSink<W> {
    /// Streams records into `writer`.
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink {
            writer,
            lines: 0,
            errored: false,
        }
    }

    /// Lines successfully written.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Whether any write failed (the sink goes quiet after the first error
    /// instead of panicking mid-run).
    pub fn errored(&self) -> bool {
        self.errored
    }

    /// Consumes the sink, returning the writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn record(&mut self, rec: &TraceRecord) {
        if self.errored {
            return;
        }
        if writeln!(self.writer, "{}", rec.to_json()).is_err() {
            self.errored = true;
            return;
        }
        self.lines += 1;
    }

    fn flush(&mut self) {
        if self.writer.flush().is_err() {
            self.errored = true;
        }
    }
}

/// A sink wrapper the caller keeps a handle to: `SharedSink<S>` clones share
/// one underlying `S`, so a test (or the `trace` binary) can pass one clone
/// into [`crate::Telemetry::with_sink`] and read the records back through
/// another after the run.
#[derive(Debug, Default)]
pub struct SharedSink<S> {
    inner: Arc<Mutex<S>>,
}

impl<S> Clone for SharedSink<S> {
    fn clone(&self) -> Self {
        SharedSink {
            inner: self.inner.clone(),
        }
    }
}

impl<S> SharedSink<S> {
    /// Wraps `sink` for shared access.
    pub fn new(sink: S) -> SharedSink<S> {
        SharedSink {
            inner: Arc::new(Mutex::new(sink)),
        }
    }

    /// Locks the underlying sink for inspection.
    pub fn lock(&self) -> MutexGuard<'_, S> {
        self.inner.lock().expect("shared sink poisoned")
    }
}

impl<S: TraceSink> TraceSink for SharedSink<S> {
    fn record(&mut self, rec: &TraceRecord) {
        self.lock().record(rec);
    }

    fn flush(&mut self) {
        self.lock().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn rec(seq: u64) -> TraceRecord {
        TraceRecord {
            seq,
            t: seq as f64,
            event: TraceEvent::AebEngaged,
        }
    }

    #[test]
    fn ring_buffer_keeps_newest() {
        let mut ring = RingBufferSink::new(3);
        for i in 0..5 {
            ring.record(&rec(i));
        }
        assert_eq!(ring.dropped(), 2);
        let seqs: Vec<u64> = ring.records().iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(ring.drain().len(), 3);
        assert!(ring.records().is_empty());
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut ring = RingBufferSink::new(0);
        ring.record(&rec(0));
        assert!(ring.records().is_empty());
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn jsonl_writes_one_line_per_record() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(&rec(0));
        sink.record(&rec(1));
        sink.flush();
        assert_eq!(sink.lines(), 2);
        assert!(!sink.errored());
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }

    #[test]
    fn jsonl_goes_quiet_after_a_write_error() {
        struct Failing;
        impl Write for Failing {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Failing);
        sink.record(&rec(0));
        sink.record(&rec(1));
        assert!(sink.errored());
        assert_eq!(sink.lines(), 0);
    }

    #[test]
    fn shared_sink_clones_view_one_buffer() {
        let shared = SharedSink::new(RingBufferSink::new(8));
        let mut writer = shared.clone();
        writer.record(&rec(0));
        assert_eq!(shared.lock().records().len(), 1);
    }
}
