//! Lock-free metrics: event counters and fixed-bucket duration histograms.
//!
//! Everything is a relaxed atomic — recording from concurrent campaign
//! workers needs no locks, and two registries can be merged by adding their
//! counters, which makes [`MetricsRegistry::merge_from`] associative and
//! commutative (verified by the workspace's merge-associativity tests).
//! Counter values are exactly deterministic for a given workload; durations
//! are wall-clock and therefore not.

use crate::event::{EventKind, TraceEvent};
use crate::stage::Stage;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Histogram bucket upper bounds in nanoseconds (last bucket is +∞).
///
/// Chosen for the latency range of this workload: the cheapest stages
/// (scheduler dispatch) sit near 1 µs, a whole run near 100 ms.
pub const BUCKET_BOUNDS_NS: [u64; 16] = [
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    50_000_000,
    100_000_000,
    1_000_000_000,
];

/// Bucket count including the +∞ overflow bucket.
pub const BUCKET_COUNT: usize = BUCKET_BOUNDS_NS.len() + 1;

/// A fixed-bucket duration histogram (counts, sum, max; all atomic).
#[derive(Debug, Default)]
pub struct DurationHistogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl DurationHistogram {
    /// Records one duration in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        let idx = BUCKET_BOUNDS_NS
            .iter()
            .position(|&bound| ns <= bound)
            .unwrap_or(BUCKET_COUNT - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of recorded durations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded durations (ns).
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    /// Largest recorded duration (ns).
    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed)
    }

    /// Adds every counter of `other` into `self`.
    fn merge_from(&self, other: &DurationHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_ns
            .fetch_add(other.sum_ns.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_ns
            .fetch_max(other.max_ns.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Upper bound (ns) of the bucket containing quantile `q` (0..=1).
    /// Bucket-resolution approximation; exact max for `q = 1`.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max_ns();
        }
        let rank = (q * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return BUCKET_BOUNDS_NS
                    .get(idx)
                    .copied()
                    .unwrap_or_else(|| self.max_ns());
            }
        }
        self.max_ns()
    }
}

/// The workspace metrics registry: one histogram per [`Stage`], one counter
/// per [`EventKind`].
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    stages: [DurationHistogram; Stage::COUNT],
    events: [AtomicU64; EventKind::COUNT],
}

impl MetricsRegistry {
    /// A fresh, all-zero registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Records one duration for `stage`.
    pub fn record_duration(&self, stage: Stage, ns: u64) {
        self.stages[stage.index()].record_ns(ns);
    }

    /// Counts one occurrence of `event`'s kind.
    pub fn count_event(&self, event: &TraceEvent) {
        self.events[event.kind().index()].fetch_add(1, Ordering::Relaxed);
    }

    /// The histogram of one stage.
    pub fn stage(&self, stage: Stage) -> &DurationHistogram {
        &self.stages[stage.index()]
    }

    /// Occurrences of one event kind.
    pub fn event_count(&self, kind: EventKind) -> u64 {
        self.events[kind.index()].load(Ordering::Relaxed)
    }

    /// Adds every counter of `other` into `self`. Addition of relaxed
    /// atomics: associative, commutative, and safe while other threads are
    /// still writing to `self` (they'd simply land after the merge).
    pub fn merge_from(&self, other: &MetricsRegistry) {
        for (mine, theirs) in self.stages.iter().zip(&other.stages) {
            mine.merge_from(theirs);
        }
        for (mine, theirs) in self.events.iter().zip(&other.events) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// An owned point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            stages: Stage::ALL
                .iter()
                .map(|&stage| {
                    let h = self.stage(stage);
                    StageSummary {
                        stage,
                        count: h.count(),
                        total_ns: h.sum_ns(),
                        max_ns: h.max_ns(),
                        p50_ns: h.quantile_ns(0.50),
                        p99_ns: h.quantile_ns(0.99),
                    }
                })
                .collect(),
            events: EventKind::ALL
                .iter()
                .map(|&kind| (kind, self.event_count(kind)))
                .collect(),
        }
    }
}

/// Per-stage latency summary inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageSummary {
    /// The stage.
    pub stage: Stage,
    /// Recorded invocations.
    pub count: u64,
    /// Total wall time (ns).
    pub total_ns: u64,
    /// Worst single invocation (ns).
    pub max_ns: u64,
    /// Median (bucket upper bound, ns).
    pub p50_ns: u64,
    /// 99th percentile (bucket upper bound, ns).
    pub p99_ns: u64,
}

impl StageSummary {
    /// Mean invocation cost (ns), zero when never invoked.
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// An owned snapshot of a registry: per-stage latency summaries plus event
/// counts, ready for rendering or comparison.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// One summary per stage, in [`Stage::ALL`] order.
    pub stages: Vec<StageSummary>,
    /// One `(kind, count)` per event kind, in [`EventKind::ALL`] order.
    pub events: Vec<(EventKind, u64)>,
}

impl MetricsSnapshot {
    /// Occurrences of one event kind.
    pub fn event_count(&self, kind: EventKind) -> u64 {
        self.events
            .iter()
            .find(|(k, _)| *k == kind)
            .map_or(0, |(_, n)| *n)
    }

    /// The summary of one stage.
    pub fn stage(&self, stage: Stage) -> Option<&StageSummary> {
        self.stages.iter().find(|s| s.stage == stage)
    }

    /// The deterministic projection of this snapshot: every counter that
    /// must be identical across thread counts and hosts (stage invocation
    /// counts and event counts — no wall-clock durations). Two campaign
    /// executions of the same workload must agree on this value exactly.
    pub fn deterministic_counts(&self) -> Vec<(&'static str, u64)> {
        self.stages
            .iter()
            .map(|s| (s.stage.name(), s.count))
            .chain(self.events.iter().map(|(k, n)| (k.name(), *n)))
            .collect()
    }

    /// Renders the per-stage latency table (markdown, stages with at least
    /// one invocation only).
    pub fn render_latency_table(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "| stage | calls | total (ms) | mean (µs) | p50 (µs) | p99 (µs) | max (µs) |\n",
        );
        out.push_str("|---|---:|---:|---:|---:|---:|---:|\n");
        for s in self.stages.iter().filter(|s| s.count > 0) {
            let _ = writeln!(
                out,
                "| {} | {} | {:.2} | {:.1} | {:.1} | {:.1} | {:.1} |",
                s.stage.name(),
                s.count,
                s.total_ns as f64 / 1e6,
                s.mean_ns() as f64 / 1e3,
                s.p50_ns as f64 / 1e3,
                s.p99_ns as f64 / 1e3,
                s.max_ns as f64 / 1e3,
            );
        }
        out
    }
}

/// RAII timing guard: records the elapsed wall time for a stage on drop.
/// Constructed disabled (no clock read) when no registry is attached.
#[derive(Debug)]
pub struct StageTimer {
    inner: Option<(Stage, Instant, Arc<MetricsRegistry>)>,
}

impl StageTimer {
    /// Starts timing into `registry` (or a no-op guard for `None`).
    pub fn start(registry: Option<Arc<MetricsRegistry>>, stage: Stage) -> StageTimer {
        StageTimer {
            inner: registry.map(|r| (stage, Instant::now(), r)),
        }
    }

    /// A guard that records nothing.
    pub fn noop() -> StageTimer {
        StageTimer { inner: None }
    }
}

impl Drop for StageTimer {
    fn drop(&mut self) {
        if let Some((stage, start, registry)) = self.inner.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            registry.record_duration(stage, ns);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_stats() {
        let h = DurationHistogram::default();
        h.record_ns(500); // bucket 0 (≤ 1 µs)
        h.record_ns(1_500); // bucket 1
        h.record_ns(3_000_000_000); // overflow bucket
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_ns(), 3_000_001_500 + 500);
        assert_eq!(h.max_ns(), 3_000_000_000);
        assert_eq!(h.quantile_ns(0.33), 1_000); // rank 1 → first bucket
        assert_eq!(h.quantile_ns(0.5), 2_000); // rank 2 → second bucket
        assert_eq!(h.quantile_ns(1.0), 3_000_000_000);
        assert_eq!(DurationHistogram::default().quantile_ns(0.5), 0);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let make = |durations: &[u64], aeb: u64| {
            let r = MetricsRegistry::new();
            for &d in durations {
                r.record_duration(Stage::PlannerTick, d);
            }
            for _ in 0..aeb {
                r.count_event(&TraceEvent::AebEngaged);
            }
            r
        };
        let (a, b, c) = (make(&[100, 200], 1), make(&[300], 2), make(&[], 4));

        // (a ⊕ b) ⊕ c
        let left = MetricsRegistry::new();
        left.merge_from(&a);
        left.merge_from(&b);
        left.merge_from(&c);
        // a ⊕ (c ⊕ b) — different grouping AND order.
        let right = MetricsRegistry::new();
        right.merge_from(&c);
        right.merge_from(&b);
        right.merge_from(&a);

        assert_eq!(left.snapshot(), right.snapshot());
        assert_eq!(left.stage(Stage::PlannerTick).count(), 3);
        assert_eq!(left.stage(Stage::PlannerTick).sum_ns(), 600);
        assert_eq!(left.event_count(EventKind::AebEngaged), 7);
    }

    #[test]
    fn snapshot_table_skips_idle_stages() {
        let r = MetricsRegistry::new();
        r.record_duration(Stage::Run, 5_000_000);
        let snap = r.snapshot();
        let table = snap.render_latency_table();
        assert!(table.contains("| run |"));
        assert!(!table.contains("| planner_tick |"));
        assert_eq!(snap.stage(Stage::Run).unwrap().count, 1);
        assert_eq!(snap.stage(Stage::Run).unwrap().mean_ns(), 5_000_000);
    }

    #[test]
    fn deterministic_counts_exclude_durations() {
        let r = MetricsRegistry::new();
        r.record_duration(Stage::PlannerTick, 123);
        let s = MetricsRegistry::new();
        s.record_duration(Stage::PlannerTick, 456_789);
        assert_eq!(
            r.snapshot().deterministic_counts(),
            s.snapshot().deterministic_counts(),
            "same counts, different wall time"
        );
    }

    #[test]
    fn timer_records_on_drop_and_noop_is_free() {
        let registry = Arc::new(MetricsRegistry::new());
        {
            let _t = StageTimer::start(Some(registry.clone()), Stage::ControlTick);
        }
        assert_eq!(registry.stage(Stage::ControlTick).count(), 1);
        {
            let _t = StageTimer::noop();
            let _u = StageTimer::start(None, Stage::ControlTick);
        }
        assert_eq!(registry.stage(Stage::ControlTick).count(), 1);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let registry = Arc::new(MetricsRegistry::new());
        crossbeam_scope(&registry);
        assert_eq!(registry.stage(Stage::WorldStep).count(), 4 * 1000);
    }

    fn crossbeam_scope(registry: &Arc<MetricsRegistry>) {
        let mut handles = Vec::new();
        for _ in 0..4 {
            let r = registry.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    r.record_duration(Stage::WorldStep, i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
