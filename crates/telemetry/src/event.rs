//! The typed trace-event taxonomy.
//!
//! Events carry only simulation-deterministic payloads (sim-time, seeds,
//! counts, static names) so that a run's event stream is bit-identical for
//! a given seed regardless of host, thread count, or wall-clock load. Wall
//! time belongs in the metrics registry, never here.

use std::fmt::Write as _;

/// Which sensor channel a sample-level event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensorChannel {
    /// The 15 Hz camera link (the attacked channel).
    Camera,
    /// The 10 Hz LiDAR sweep.
    Lidar,
    /// The 12.5 Hz GPS/IMU fix.
    Gps,
}

impl SensorChannel {
    /// Stable snake_case name used in the JSONL schema.
    pub fn name(self) -> &'static str {
        match self {
            SensorChannel::Camera => "camera",
            SensorChannel::Lidar => "lidar",
            SensorChannel::Gps => "gps",
        }
    }
}

/// The malware's lifecycle phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackPhase {
    /// Watching the replica world model, holding fire.
    Monitoring,
    /// Actively perturbing camera frames.
    Perturbing,
    /// Single shot spent; permanently quiet.
    Dormant,
}

impl AttackPhase {
    /// Stable snake_case name used in the JSONL schema.
    pub fn name(self) -> &'static str {
        match self {
            AttackPhase::Monitoring => "monitoring",
            AttackPhase::Perturbing => "perturbing",
            AttackPhase::Dormant => "dormant",
        }
    }
}

/// One structured event from somewhere in the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A session began executing.
    RunStarted {
        /// Scenario name (paper naming, e.g. `DS-2`).
        scenario: &'static str,
        /// Run seed.
        seed: u64,
    },
    /// The multi-rate scheduler fired a task.
    SchedulerTask {
        /// Registered task name (`camera`, `lidar`, `gps`, `planner`).
        task: &'static str,
    },
    /// A sensor measurement passed through the delivery tap.
    SensorSample {
        /// Originating channel.
        channel: SensorChannel,
        /// Channel-local sequence number (camera frame seq; 0 otherwise).
        seq: u64,
        /// Whether the measurement reached the consumer (false = dropped).
        delivered: bool,
    },
    /// The fault injector perturbed or withheld measurements.
    FaultInjected {
        /// Affected channel.
        channel: SensorChannel,
        /// Injector counter that advanced (e.g. `camera_frames_dropped`).
        what: &'static str,
        /// How many units the counter advanced by.
        count: u32,
    },
    /// The ADS detector emitted its per-frame output.
    DetectionsEmitted {
        /// Camera frame sequence number.
        frame_seq: u64,
        /// Number of detections in this frame.
        count: u32,
    },
    /// The ADS tracker finished one update step.
    TrackUpdate {
        /// Confirmed (published) tracks.
        confirmed: u32,
        /// All live tracks including tentative ones.
        total: u32,
    },
    /// Perception rejected a frozen/replayed camera frame.
    StaleFrameRejected {
        /// Sequence number of the rejected frame.
        frame_seq: u64,
    },
    /// The malware committed its single shot.
    AttackTriggered {
        /// Chosen attack vector (paper naming).
        vector: &'static str,
        /// Planned perturbation window (frames).
        k: u32,
        /// The safety hijacker's predicted post-attack δ (m).
        predicted_delta: f64,
    },
    /// The malware's lifecycle phase changed.
    AttackPhaseChanged {
        /// The phase being entered.
        phase: AttackPhase,
    },
    /// The planner's binding behavior mode changed.
    PlannerModeChanged {
        /// Mode before this cycle.
        from: &'static str,
        /// Mode after this cycle.
        to: &'static str,
    },
    /// The ADS entered emergency braking (a new forced-EB event).
    AebEngaged,
    /// Ground-truth bumper contact halted the run.
    Collision,
    /// A session finished.
    RunFinished {
        /// Simulated seconds executed.
        sim_seconds: f64,
        /// Planner samples recorded.
        samples: u64,
    },
    /// A campaign worker claimed one run off the work queue.
    CampaignRunDispatched {
        /// Run index within the campaign (seed = base_seed + index).
        index: u64,
    },
    /// A content-addressed oracle-cache lookup found a usable entry.
    OracleCacheHit {
        /// The cache key digest (hex in the JSONL schema).
        key: u64,
    },
    /// A content-addressed oracle-cache lookup missed (absent or corrupt).
    OracleCacheMiss {
        /// The cache key digest (hex in the JSONL schema).
        key: u64,
    },
    /// A suite-orchestrator job began executing on a worker.
    JobStarted {
        /// The job's DAG identifier (e.g. `oracle:DS-1:Disappear`).
        job: String,
    },
    /// A suite-orchestrator job finished executing.
    JobFinished {
        /// The job's DAG identifier.
        job: String,
    },
    /// An artifact-store read found usable bytes under the key.
    ArtifactHit {
        /// Store namespace (`oracle`, `dataset`, …).
        namespace: &'static str,
        /// The content-address digest (hex in the JSONL schema).
        key: u64,
    },
    /// An artifact-store read found nothing (absent or unreadable).
    ArtifactMiss {
        /// Store namespace (`oracle`, `dataset`, …).
        namespace: &'static str,
        /// The content-address digest (hex in the JSONL schema).
        key: u64,
    },
    /// The lockstep batch engine advanced all live sessions by one tick.
    ///
    /// Engine-level bookkeeping: its count depends on the batch size, so it
    /// is excluded (by its `batch_` name prefix) from the cross-dispatch
    /// telemetry-invariance contract that per-run events obey.
    BatchStepped {
        /// Sessions still live in the batch this tick.
        lanes: u32,
    },
    /// The batch engine answered one round of coalesced oracle queries with
    /// a single batched forward pass.
    ///
    /// Engine-level bookkeeping, excluded from cross-dispatch invariance
    /// like [`TraceEvent::BatchStepped`].
    BatchOracleInference {
        /// Queries answered in this round.
        queries: u32,
    },
    /// The evaluation daemon admitted a request and began executing its
    /// subgraph.
    RequestAccepted {
        /// The request's correlation id.
        request: String,
    },
    /// The evaluation daemon finished a request (done or typed error).
    RequestFinished {
        /// The request's correlation id.
        request: String,
    },
}

/// Dense event-kind tags for counting (one counter per kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // mirrors TraceEvent variant for variant
pub enum EventKind {
    RunStarted,
    SchedulerTask,
    SensorSample,
    FaultInjected,
    DetectionsEmitted,
    TrackUpdate,
    StaleFrameRejected,
    AttackTriggered,
    AttackPhaseChanged,
    PlannerModeChanged,
    AebEngaged,
    Collision,
    RunFinished,
    CampaignRunDispatched,
    OracleCacheHit,
    OracleCacheMiss,
    JobStarted,
    JobFinished,
    ArtifactHit,
    ArtifactMiss,
    BatchStepped,
    BatchOracleInference,
    RequestAccepted,
    RequestFinished,
}

impl EventKind {
    /// Every event kind, in taxonomy order.
    pub const ALL: [EventKind; 24] = [
        EventKind::RunStarted,
        EventKind::SchedulerTask,
        EventKind::SensorSample,
        EventKind::FaultInjected,
        EventKind::DetectionsEmitted,
        EventKind::TrackUpdate,
        EventKind::StaleFrameRejected,
        EventKind::AttackTriggered,
        EventKind::AttackPhaseChanged,
        EventKind::PlannerModeChanged,
        EventKind::AebEngaged,
        EventKind::Collision,
        EventKind::RunFinished,
        EventKind::CampaignRunDispatched,
        EventKind::OracleCacheHit,
        EventKind::OracleCacheMiss,
        EventKind::JobStarted,
        EventKind::JobFinished,
        EventKind::ArtifactHit,
        EventKind::ArtifactMiss,
        EventKind::BatchStepped,
        EventKind::BatchOracleInference,
        EventKind::RequestAccepted,
        EventKind::RequestFinished,
    ];

    /// Number of event kinds (registry array size).
    pub const COUNT: usize = EventKind::ALL.len();

    /// Dense index of this kind.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name — the `"type"` field of the JSONL schema.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::RunStarted => "run_started",
            EventKind::SchedulerTask => "scheduler_task",
            EventKind::SensorSample => "sensor_sample",
            EventKind::FaultInjected => "fault_injected",
            EventKind::DetectionsEmitted => "detections_emitted",
            EventKind::TrackUpdate => "track_update",
            EventKind::StaleFrameRejected => "stale_frame_rejected",
            EventKind::AttackTriggered => "attack_triggered",
            EventKind::AttackPhaseChanged => "attack_phase_changed",
            EventKind::PlannerModeChanged => "planner_mode_changed",
            EventKind::AebEngaged => "aeb_engaged",
            EventKind::Collision => "collision",
            EventKind::RunFinished => "run_finished",
            EventKind::CampaignRunDispatched => "campaign_run_dispatched",
            EventKind::OracleCacheHit => "oracle_cache_hit",
            EventKind::OracleCacheMiss => "oracle_cache_miss",
            EventKind::JobStarted => "job_started",
            EventKind::JobFinished => "job_finished",
            EventKind::ArtifactHit => "artifact_hit",
            EventKind::ArtifactMiss => "artifact_miss",
            EventKind::BatchStepped => "batch_stepped",
            EventKind::BatchOracleInference => "batch_oracle_inference",
            EventKind::RequestAccepted => "request_accepted",
            EventKind::RequestFinished => "request_finished",
        }
    }
}

impl TraceEvent {
    /// The kind tag of this event.
    pub fn kind(&self) -> EventKind {
        match self {
            TraceEvent::RunStarted { .. } => EventKind::RunStarted,
            TraceEvent::SchedulerTask { .. } => EventKind::SchedulerTask,
            TraceEvent::SensorSample { .. } => EventKind::SensorSample,
            TraceEvent::FaultInjected { .. } => EventKind::FaultInjected,
            TraceEvent::DetectionsEmitted { .. } => EventKind::DetectionsEmitted,
            TraceEvent::TrackUpdate { .. } => EventKind::TrackUpdate,
            TraceEvent::StaleFrameRejected { .. } => EventKind::StaleFrameRejected,
            TraceEvent::AttackTriggered { .. } => EventKind::AttackTriggered,
            TraceEvent::AttackPhaseChanged { .. } => EventKind::AttackPhaseChanged,
            TraceEvent::PlannerModeChanged { .. } => EventKind::PlannerModeChanged,
            TraceEvent::AebEngaged => EventKind::AebEngaged,
            TraceEvent::Collision => EventKind::Collision,
            TraceEvent::RunFinished { .. } => EventKind::RunFinished,
            TraceEvent::CampaignRunDispatched { .. } => EventKind::CampaignRunDispatched,
            TraceEvent::OracleCacheHit { .. } => EventKind::OracleCacheHit,
            TraceEvent::OracleCacheMiss { .. } => EventKind::OracleCacheMiss,
            TraceEvent::JobStarted { .. } => EventKind::JobStarted,
            TraceEvent::JobFinished { .. } => EventKind::JobFinished,
            TraceEvent::ArtifactHit { .. } => EventKind::ArtifactHit,
            TraceEvent::ArtifactMiss { .. } => EventKind::ArtifactMiss,
            TraceEvent::BatchStepped { .. } => EventKind::BatchStepped,
            TraceEvent::BatchOracleInference { .. } => EventKind::BatchOracleInference,
            TraceEvent::RequestAccepted { .. } => EventKind::RequestAccepted,
            TraceEvent::RequestFinished { .. } => EventKind::RequestFinished,
        }
    }
}

/// One entry of the event stream: sequence number, sim-time, payload.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Gap-free, strictly increasing per sink.
    pub seq: u64,
    /// Simulation time of the event (s).
    pub t: f64,
    /// The payload.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// Renders this record as one JSON line (no trailing newline).
    ///
    /// The schema is flat and stable: `seq`, `t` (6 decimal places), `type`
    /// (an [`EventKind::name`]), then the payload fields of the variant.
    /// The vendored `serde` is a no-op stub, so this is the one place JSON
    /// is produced — keep it in sync with the taxonomy.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        let _ = write!(
            s,
            "{{\"seq\":{},\"t\":{:.6},\"type\":\"{}\"",
            self.seq,
            self.t,
            self.event.kind().name()
        );
        match &self.event {
            TraceEvent::RunStarted { scenario, seed } => {
                let _ = write!(
                    s,
                    ",\"scenario\":\"{}\",\"seed\":{}",
                    escape(scenario),
                    seed
                );
            }
            TraceEvent::SchedulerTask { task } => {
                let _ = write!(s, ",\"task\":\"{}\"", escape(task));
            }
            TraceEvent::SensorSample {
                channel,
                seq,
                delivered,
            } => {
                let _ = write!(
                    s,
                    ",\"channel\":\"{}\",\"sample_seq\":{seq},\"delivered\":{delivered}",
                    channel.name()
                );
            }
            TraceEvent::FaultInjected {
                channel,
                what,
                count,
            } => {
                let _ = write!(
                    s,
                    ",\"channel\":\"{}\",\"what\":\"{}\",\"count\":{count}",
                    channel.name(),
                    escape(what)
                );
            }
            TraceEvent::DetectionsEmitted { frame_seq, count } => {
                let _ = write!(s, ",\"frame_seq\":{frame_seq},\"count\":{count}");
            }
            TraceEvent::TrackUpdate { confirmed, total } => {
                let _ = write!(s, ",\"confirmed\":{confirmed},\"total\":{total}");
            }
            TraceEvent::StaleFrameRejected { frame_seq } => {
                let _ = write!(s, ",\"frame_seq\":{frame_seq}");
            }
            TraceEvent::AttackTriggered {
                vector,
                k,
                predicted_delta,
            } => {
                let _ = write!(
                    s,
                    ",\"vector\":\"{}\",\"k\":{k},\"predicted_delta\":{predicted_delta:?}",
                    escape(vector)
                );
            }
            TraceEvent::AttackPhaseChanged { phase } => {
                let _ = write!(s, ",\"phase\":\"{}\"", phase.name());
            }
            TraceEvent::PlannerModeChanged { from, to } => {
                let _ = write!(
                    s,
                    ",\"from\":\"{}\",\"to\":\"{}\"",
                    escape(from),
                    escape(to)
                );
            }
            TraceEvent::AebEngaged | TraceEvent::Collision => {}
            TraceEvent::RunFinished {
                sim_seconds,
                samples,
            } => {
                let _ = write!(s, ",\"sim_seconds\":{sim_seconds:.6},\"samples\":{samples}");
            }
            TraceEvent::CampaignRunDispatched { index } => {
                let _ = write!(s, ",\"index\":{index}");
            }
            TraceEvent::OracleCacheHit { key } | TraceEvent::OracleCacheMiss { key } => {
                let _ = write!(s, ",\"key\":\"{key:016x}\"");
            }
            TraceEvent::JobStarted { job } | TraceEvent::JobFinished { job } => {
                let _ = write!(s, ",\"job\":\"{}\"", escape(job));
            }
            TraceEvent::ArtifactHit { namespace, key }
            | TraceEvent::ArtifactMiss { namespace, key } => {
                let _ = write!(
                    s,
                    ",\"namespace\":\"{}\",\"key\":\"{key:016x}\"",
                    escape(namespace)
                );
            }
            TraceEvent::BatchStepped { lanes } => {
                let _ = write!(s, ",\"lanes\":{lanes}");
            }
            TraceEvent::BatchOracleInference { queries } => {
                let _ = write!(s, ",\"queries\":{queries}");
            }
            TraceEvent::RequestAccepted { request } | TraceEvent::RequestFinished { request } => {
                let _ = write!(s, ",\"request\":\"{}\"", escape(request));
            }
        }
        s.push('}');
        s
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
/// All current payload strings are static snake_case names, but the schema
/// must stay valid if one ever carries user input.
fn escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_lines_are_flat_and_typed() {
        let rec = TraceRecord {
            seq: 3,
            t: 1.0 / 15.0,
            event: TraceEvent::SensorSample {
                channel: SensorChannel::Camera,
                seq: 7,
                delivered: true,
            },
        };
        assert_eq!(
            rec.to_json(),
            "{\"seq\":3,\"t\":0.066667,\"type\":\"sensor_sample\",\
             \"channel\":\"camera\",\"sample_seq\":7,\"delivered\":true}"
        );
    }

    #[test]
    fn every_variant_serializes_with_its_kind_name() {
        let events = [
            TraceEvent::RunStarted {
                scenario: "DS-2",
                seed: 7,
            },
            TraceEvent::SchedulerTask { task: "camera" },
            TraceEvent::SensorSample {
                channel: SensorChannel::Lidar,
                seq: 0,
                delivered: false,
            },
            TraceEvent::FaultInjected {
                channel: SensorChannel::Gps,
                what: "gps_fixes_biased",
                count: 1,
            },
            TraceEvent::DetectionsEmitted {
                frame_seq: 1,
                count: 2,
            },
            TraceEvent::TrackUpdate {
                confirmed: 1,
                total: 2,
            },
            TraceEvent::StaleFrameRejected { frame_seq: 5 },
            TraceEvent::AttackTriggered {
                vector: "Move_Out",
                k: 40,
                predicted_delta: -1.5,
            },
            TraceEvent::AttackPhaseChanged {
                phase: AttackPhase::Perturbing,
            },
            TraceEvent::PlannerModeChanged {
                from: "Cruise",
                to: "EmergencyBrake",
            },
            TraceEvent::AebEngaged,
            TraceEvent::Collision,
            TraceEvent::RunFinished {
                sim_seconds: 30.0,
                samples: 300,
            },
            TraceEvent::CampaignRunDispatched { index: 17 },
            TraceEvent::OracleCacheHit {
                key: 0x88fd_3971_a1e3_db6f,
            },
            TraceEvent::OracleCacheMiss { key: 1 },
            TraceEvent::JobStarted {
                job: "oracle:DS-1:Disappear".to_string(),
            },
            TraceEvent::JobFinished {
                job: "table2".to_string(),
            },
            TraceEvent::ArtifactHit {
                namespace: "dataset",
                key: 2,
            },
            TraceEvent::ArtifactMiss {
                namespace: "oracle",
                key: 3,
            },
            TraceEvent::BatchStepped { lanes: 16 },
            TraceEvent::BatchOracleInference { queries: 9 },
            TraceEvent::RequestAccepted {
                request: "req-0".to_string(),
            },
            TraceEvent::RequestFinished {
                request: "req-0".to_string(),
            },
        ];
        assert_eq!(events.len(), EventKind::COUNT, "taxonomy covered");
        for (event, kind) in events.into_iter().zip(EventKind::ALL) {
            assert_eq!(event.kind(), kind);
            let json = TraceRecord {
                seq: 0,
                t: 0.0,
                event,
            }
            .to_json();
            assert!(json.starts_with("{\"seq\":0,\"t\":0.000000,\"type\":\""));
            assert!(json.contains(kind.name()), "{json}");
            assert!(json.ends_with('}'));
        }
    }

    #[test]
    fn escaping_keeps_lines_valid() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn kind_indices_are_dense() {
        for (i, kind) in EventKind::ALL.iter().enumerate() {
            assert_eq!(kind.index(), i);
        }
        let mut names: Vec<_> = EventKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EventKind::COUNT, "names unique");
    }
}
