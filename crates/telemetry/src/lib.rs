//! # av-telemetry — workspace-wide observability
//!
//! A zero-cost-when-disabled structured-event layer for the whole pipeline.
//! Every stage of a simulation run — scheduler ticks, sensor samples, fault
//! injections, detector output, track updates, attack phase changes, planner
//! mode transitions, AEB engagement, collisions — can emit a typed
//! [`TraceEvent`] into a pluggable [`TraceSink`], and every stage can be
//! timed into a lock-free [`MetricsRegistry`] of counters and fixed-bucket
//! duration histograms.
//!
//! The design constraints, in order:
//!
//! 1. **Zero cost when disabled.** The default [`Telemetry`] handle is
//!    disabled: [`Telemetry::emit`] returns after one `Option` check without
//!    constructing the event (the event is built by a closure), and
//!    [`Telemetry::time`] returns a no-op guard without reading the clock.
//!    Campaign throughput with telemetry off is indistinguishable from a
//!    build without the layer.
//! 2. **Determinism.** Trace events carry only *simulation* quantities
//!    (sim-time, seeds, counts, names) — never wall-clock timestamps — so
//!    the event stream for a given seed is bit-identical across runs,
//!    machines, and thread counts. Wall-clock durations live exclusively in
//!    the metrics registry, which the determinism tests ignore.
//! 3. **Merge across workers.** Registries are plain atomics:
//!    [`MetricsRegistry::merge_from`] is associative and commutative, so a
//!    campaign can give each worker thread its own registry and fold them in
//!    any order with the same result (for the deterministic counters).
//!
//! [`Stage`] names the instrumented pipeline stages; sinks live in
//! [`sink`]; the event taxonomy in [`event`]; the registry in [`metrics`].

#![warn(missing_docs)]

pub mod event;
pub mod metrics;
pub mod sink;
pub mod stage;

pub use event::{AttackPhase, EventKind, SensorChannel, TraceEvent, TraceRecord};
pub use metrics::{MetricsRegistry, MetricsSnapshot, StageSummary, StageTimer};
pub use sink::{JsonlSink, NullSink, RingBufferSink, SharedSink, TraceSink};
pub use stage::Stage;

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Interior state behind an enabled sink: the sink itself plus the next
/// event sequence number (assigned under the same lock so the stream is
/// gap-free and ordered).
struct SinkState {
    seq: u64,
    sink: Box<dyn TraceSink + Send>,
}

/// A cloneable handle to the observability layer.
///
/// Cloning is cheap (two `Arc` clones at most); clones share the same sink
/// and registry, so one handle can be threaded through the scheduler,
/// perception, planner, attacker, and run loop of a session.
///
/// ```
/// use av_telemetry::{RingBufferSink, Stage, Telemetry, TraceEvent};
/// let tele = Telemetry::with_sink(RingBufferSink::new(64));
/// tele.emit(0.5, || TraceEvent::AebEngaged);
/// let _timer = tele.time(Stage::PlannerTick); // records on drop
/// assert!(tele.is_enabled());
/// assert!(Telemetry::disabled().is_enabled() == false);
/// ```
#[derive(Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<Mutex<SinkState>>>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Telemetry")
            .field("sink", &self.sink.is_some())
            .field("metrics", &self.metrics.is_some())
            .finish()
    }
}

impl Telemetry {
    /// The disabled handle: every operation is a no-op after one branch.
    pub fn disabled() -> Telemetry {
        Telemetry::default()
    }

    /// Full telemetry: events into `sink`, timings into a fresh registry.
    pub fn with_sink(sink: impl TraceSink + Send + 'static) -> Telemetry {
        Telemetry {
            sink: Some(Arc::new(Mutex::new(SinkState {
                seq: 0,
                sink: Box::new(sink),
            }))),
            metrics: Some(Arc::new(MetricsRegistry::new())),
        }
    }

    /// Metrics only: stage timings and event counts, no event stream.
    pub fn metrics_only() -> Telemetry {
        Telemetry::with_registry(Arc::new(MetricsRegistry::new()))
    }

    /// Metrics only, into a caller-owned (possibly shared) registry — the
    /// campaign runner hands each worker thread a registry this way.
    pub fn with_registry(registry: Arc<MetricsRegistry>) -> Telemetry {
        Telemetry {
            sink: None,
            metrics: Some(registry),
        }
    }

    /// Whether any event consumer is attached (sink or metrics).
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some() || self.metrics.is_some()
    }

    /// Whether an event sink (not just metrics) is attached.
    pub fn has_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits one event at sim-time `t`. The closure runs only when a
    /// consumer is attached, so a disabled handle never constructs the
    /// event. Event *counts* are recorded even in metrics-only mode.
    pub fn emit(&self, t: f64, event: impl FnOnce() -> TraceEvent) {
        if self.sink.is_none() && self.metrics.is_none() {
            return;
        }
        let event = event();
        if let Some(metrics) = &self.metrics {
            metrics.count_event(&event);
        }
        if let Some(sink) = &self.sink {
            let mut state = sink.lock().expect("telemetry sink poisoned");
            let seq = state.seq;
            state.seq += 1;
            state.sink.record(&TraceRecord { seq, t, event });
        }
    }

    /// Starts timing `stage`; the returned guard records the elapsed wall
    /// time into the registry when dropped. No-op without a registry.
    pub fn time(&self, stage: Stage) -> StageTimer {
        StageTimer::start(self.metrics.clone(), stage)
    }

    /// The attached registry, if any (for snapshots and merging).
    pub fn registry(&self) -> Option<&Arc<MetricsRegistry>> {
        self.metrics.as_ref()
    }

    /// Snapshot of the attached registry, if any.
    pub fn metrics(&self) -> Option<MetricsSnapshot> {
        self.metrics.as_ref().map(|m| m.snapshot())
    }

    /// Flushes the sink (e.g. buffered JSONL writers), if one is attached.
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            sink.lock().expect("telemetry sink poisoned").sink.flush();
        }
    }
}

/// A monotone, process-wide id source for anything that needs distinct ids
/// across telemetry consumers (session numbering in multi-run binaries).
pub fn next_global_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_never_builds_events() {
        let tele = Telemetry::disabled();
        assert!(!tele.is_enabled());
        let mut built = false;
        tele.emit(0.0, || {
            built = true;
            TraceEvent::AebEngaged
        });
        assert!(!built, "disabled emit must not run the closure");
        assert!(tele.metrics().is_none());
    }

    #[test]
    fn sink_receives_ordered_sequence_numbers() {
        let sink = SharedSink::new(RingBufferSink::new(16));
        let tele = Telemetry::with_sink(sink.clone());
        for i in 0..5 {
            tele.emit(f64::from(i), || TraceEvent::AebEngaged);
        }
        let records: Vec<_> = sink.lock().records().iter().cloned().collect();
        assert_eq!(records.len(), 5);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
        }
    }

    #[test]
    fn clones_share_the_sink_and_registry() {
        let sink = SharedSink::new(RingBufferSink::new(16));
        let tele = Telemetry::with_sink(sink.clone());
        let clone = tele.clone();
        tele.emit(0.0, || TraceEvent::AebEngaged);
        clone.emit(1.0, || TraceEvent::Collision);
        assert_eq!(sink.lock().records().len(), 2);
        assert_eq!(sink.lock().records()[1].seq, 1, "shared seq counter");
        let snap = tele.metrics().unwrap();
        assert_eq!(snap.event_count(event::EventKind::AebEngaged), 1);
        assert_eq!(snap.event_count(event::EventKind::Collision), 1);
    }

    #[test]
    fn metrics_only_counts_without_a_stream() {
        let tele = Telemetry::metrics_only();
        assert!(tele.is_enabled());
        assert!(!tele.has_sink());
        tele.emit(0.0, || TraceEvent::AebEngaged);
        let snap = tele.metrics().unwrap();
        assert_eq!(snap.event_count(event::EventKind::AebEngaged), 1);
    }

    #[test]
    fn global_ids_are_distinct() {
        let a = next_global_id();
        let b = next_global_id();
        assert_ne!(a, b);
    }
}
