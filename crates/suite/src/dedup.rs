//! Cross-request in-flight deduplication of artifact computations.
//!
//! The artifact store makes *completed* work shareable; this registry makes
//! *running* work shareable. When two evaluation requests both need the
//! oracle for the same 〈scenario, vector, sweep〉 key, the first caller to
//! [`InFlight::claim`] the key becomes the **leader** and computes; every
//! later caller becomes a **follower** and blocks until the leader releases
//! its [`ClaimToken`], then re-reads the store — so the expensive training
//! job runs exactly once per store no matter how many concurrent requests
//! ask for it.
//!
//! The registry tracks only liveness, never results: results travel through
//! the [`crate::store::ArtifactStore`], which is what keeps this module a
//! std-only `Mutex`/`Condvar` table with no knowledge of payload types.
//! Leadership is released on token drop, so a panicking leader can never
//! strand its followers — they wake, miss the store, and compute locally.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// One in-flight computation: `done` flips exactly once, at release.
#[derive(Debug, Default)]
struct Slot {
    done: Mutex<bool>,
    released: Condvar,
}

/// The in-flight claim registry. One instance is shared per
/// [`crate::store::ArtifactStore`]; keys are ⟨namespace, content digest⟩,
/// exactly the store's addressing scheme.
#[derive(Debug, Default)]
pub struct InFlight {
    slots: Mutex<HashMap<(&'static str, u64), Arc<Slot>>>,
    led: AtomicU64,
    coalesced: AtomicU64,
}

/// What [`InFlight::claim`] decided for this caller.
#[derive(Debug)]
pub enum Claim<'a> {
    /// This caller computes. Keep the token alive until the result is in
    /// the store; dropping it wakes every follower.
    Leader(ClaimToken<'a>),
    /// Another caller computed the same key while we blocked. The store
    /// should now have the result — re-read it (and fall back to computing
    /// locally if the leader failed to persist).
    Coalesced,
    /// The registry is not coordinating this key (disabled store): compute
    /// locally, nothing to release.
    Uncoordinated,
}

/// Leadership over one in-flight key; released (followers woken, slot
/// retired) on drop.
#[derive(Debug)]
pub struct ClaimToken<'a> {
    registry: &'a InFlight,
    ns: &'static str,
    key: u64,
    slot: Arc<Slot>,
}

impl ClaimToken<'_> {
    /// Releases leadership *without* counting a led computation. For the
    /// leader that, on its post-claim store re-check, finds the result
    /// already present — it lost a race with a finishing leader between its
    /// store miss and its claim, and computes nothing. Keeps [`InFlight::led`]
    /// equal to the number of computations that actually ran, which is the
    /// equality the dedup tests assert exactly.
    pub fn disavow(self) {
        self.registry.led.fetch_sub(1, Ordering::Relaxed);
        // The Drop impl runs next: retires the slot and wakes followers.
    }
}

impl Drop for ClaimToken<'_> {
    fn drop(&mut self) {
        // Retire the slot first so a late claimant starts a fresh claim
        // (it will check the store before claiming and normally hit).
        self.registry
            .slots
            .lock()
            .expect("in-flight registry lock")
            .remove(&(self.ns, self.key));
        *self.slot.done.lock().expect("in-flight slot lock") = true;
        self.slot.released.notify_all();
    }
}

impl InFlight {
    /// An empty registry.
    pub fn new() -> InFlight {
        InFlight::default()
    }

    /// Claims ⟨`ns`, `key`⟩. The first claimant becomes the leader and
    /// returns immediately; later claimants **block** until the leader
    /// releases, then return [`Claim::Coalesced`]. Callers must check the
    /// store *before* claiming — a claim means "I am about to compute".
    pub fn claim(&self, ns: &'static str, key: u64) -> Claim<'_> {
        let slot = {
            let mut slots = self.slots.lock().expect("in-flight registry lock");
            match slots.get(&(ns, key)) {
                Some(slot) => slot.clone(),
                None => {
                    let slot = Arc::new(Slot::default());
                    slots.insert((ns, key), slot.clone());
                    self.led.fetch_add(1, Ordering::Relaxed);
                    return Claim::Leader(ClaimToken {
                        registry: self,
                        ns,
                        key,
                        slot,
                    });
                }
            }
        };
        self.coalesced.fetch_add(1, Ordering::Relaxed);
        let mut done = slot.done.lock().expect("in-flight slot lock");
        while !*done {
            done = slot.released.wait(done).expect("in-flight slot lock");
        }
        Claim::Coalesced
    }

    /// How many claims became leaders — i.e. how many computations actually
    /// ran. Two identical concurrent requests over one store keep this at
    /// the single-request value; that equality is the dedup proof CI
    /// asserts.
    pub fn led(&self) -> u64 {
        self.led.load(Ordering::Relaxed)
    }

    /// How many claims blocked on another caller's in-flight computation
    /// instead of redundantly computing.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Keys currently being computed (leaders not yet released).
    pub fn in_flight(&self) -> usize {
        self.slots.lock().expect("in-flight registry lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn first_claim_leads_second_coalesces_after_release() {
        let reg = InFlight::new();
        let token = match reg.claim("oracle", 7) {
            Claim::Leader(t) => t,
            other => panic!("expected leader, got {other:?}"),
        };
        assert_eq!((reg.led(), reg.coalesced()), (1, 0));
        assert_eq!(reg.in_flight(), 1);

        // A different key is independent.
        match reg.claim("oracle", 8) {
            Claim::Leader(_) => {}
            other => panic!("expected leader for fresh key, got {other:?}"),
        }

        drop(token);
        assert_eq!(reg.in_flight(), 0, "released slot is retired");
        // After release the key is claimable again (fresh leader).
        assert!(matches!(reg.claim("oracle", 7), Claim::Leader(_)));
    }

    #[test]
    fn disavowed_leadership_releases_without_counting() {
        let reg = InFlight::new();
        match reg.claim("oracle", 3) {
            Claim::Leader(token) => token.disavow(),
            other => panic!("expected leader, got {other:?}"),
        }
        assert_eq!((reg.led(), reg.coalesced()), (0, 0), "nothing computed");
        assert_eq!(reg.in_flight(), 0, "slot still retired");
        assert!(matches!(reg.claim("oracle", 3), Claim::Leader(_)));
    }

    #[test]
    fn followers_block_until_the_leader_releases() {
        let reg = Arc::new(InFlight::new());
        let computed = Arc::new(AtomicU32::new(0));

        crossbeam::thread::scope(|scope| {
            // One leader holds the key for a while; N followers must all
            // observe the store-after-release world, i.e. coalesce.
            let leader_reg = reg.clone();
            let leader_computed = computed.clone();
            scope.spawn(move |_| {
                let token = match leader_reg.claim("dataset", 42) {
                    Claim::Leader(t) => t,
                    other => panic!("leader expected, got {other:?}"),
                };
                std::thread::sleep(std::time::Duration::from_millis(50));
                leader_computed.fetch_add(1, Ordering::SeqCst);
                drop(token);
            });
            std::thread::sleep(std::time::Duration::from_millis(10));
            for _ in 0..4 {
                let reg = reg.clone();
                let computed = computed.clone();
                scope.spawn(move |_| match reg.claim("dataset", 42) {
                    Claim::Coalesced => {
                        assert_eq!(
                            computed.load(Ordering::SeqCst),
                            1,
                            "woke before the leader finished computing"
                        );
                    }
                    // A late follower can arrive after the leader released
                    // and legitimately become a fresh leader; that path
                    // re-checks the store in real callers.
                    Claim::Leader(_) => {}
                    Claim::Uncoordinated => panic!("registry never uncoordinates"),
                });
            }
        })
        .expect("dedup test threads");

        assert_eq!(computed.load(Ordering::SeqCst), 1, "one computation");
        assert!(reg.coalesced() >= 1, "followers coalesced");
    }

    #[test]
    fn panicking_leader_does_not_strand_followers() {
        let reg = Arc::new(InFlight::new());
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let reg_leader = reg.clone();
        let result = std::thread::spawn(move || {
            let _token = match reg_leader.claim("oracle", 1) {
                Claim::Leader(t) => t,
                other => panic!("leader expected, got {other:?}"),
            };
            panic!("leader exploded");
        })
        .join();
        std::panic::set_hook(prev);
        assert!(result.is_err(), "leader panicked");
        // The token was dropped during unwind: the key is free again and
        // nobody blocks forever.
        assert_eq!(reg.in_flight(), 0);
        assert!(matches!(reg.claim("oracle", 1), Claim::Leader(_)));
    }
}
