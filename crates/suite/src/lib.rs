//! # av-suite — evaluation-service orchestrator
//!
//! The layer that turns the experiment binaries into a servable evaluation
//! system: each paper artifact (Table II, Figs. 5–8, the ablations, the
//! defense and resilience studies) is a typed [`Job`] in a dependency DAG,
//! executed on one shared work-stealing worker pool against one shared
//! content-addressed [`ArtifactStore`] holding the expensive intermediates
//! (collected sweep datasets, trained oracles).
//!
//! Structure:
//!
//! - [`fnv`]: the FNV-1a 64-bit digest all content addresses use.
//! - [`store`]: the artifact store — namespaced, keyed byte blobs with
//!   atomic writes and best-effort reads ([`TraceEvent::ArtifactHit`] /
//!   [`TraceEvent::ArtifactMiss`] telemetry).
//! - [`dag`]: jobs with declared inputs/outputs and validated dependency
//!   edges (duplicate ids, dangling deps and cycles are construction
//!   errors), plus transitive-closure subgraphs for `--only`.
//! - [`exec`]: the executor — a work-stealing pool (workers claim ready
//!   jobs off a shared queue), a resumable JSONL run manifest (completed
//!   jobs are skipped on rerun and their recorded stdout replayed), and a
//!   per-job scorecard ([`JobReport`] / [`RunReport`]) for the end-of-run
//!   summary table.
//! - [`manifest`]: the hand-rolled JSONL manifest codec (the vendored
//!   `serde` is a no-op stub); truncated trailing lines — a killed run —
//!   parse as "not completed", which is what makes resume safe.
//! - [`api`]: the typed evaluation-service wire API — [`EvalRequest`] in,
//!   streamed [`EvalEvent`]s out — shared verbatim by the one-shot CLI and
//!   the daemon, with a hostile-input-safe JSON reader.
//! - [`dedup`]: the cross-request in-flight claim registry — concurrent
//!   computations of one artifact key coalesce onto a single leader.
//! - [`serve`]: the evaluation daemon — newline-delimited requests over
//!   stdin/stdout or a Unix socket, a priority-FIFO admission queue over a
//!   bounded slot pool, per-request event streams, and the client helpers
//!   `suite request` uses.
//!
//! Determinism contract: a job's `run` closure must be a pure function of
//! its declared inputs (plus the artifact store's content), so executing a
//! DAG with 1, 4 or 8 workers yields byte-identical job stdout and artifact
//! digests. The executor only decides *when* jobs run, never *what* they
//! compute.
//!
//! [`TraceEvent::ArtifactHit`]: av_telemetry::TraceEvent::ArtifactHit
//! [`TraceEvent::ArtifactMiss`]: av_telemetry::TraceEvent::ArtifactMiss

#![warn(missing_docs)]

pub mod api;
pub mod dag;
pub mod dedup;
pub mod exec;
pub mod fnv;
pub mod manifest;
pub mod serve;
pub mod store;

pub use api::{ApiError, ClientMessage, ErrorCode, EvalEvent, EvalRequest, EvalResponse, Priority};
pub use dag::{Dag, DagError, Job, JobOutcome};
pub use dedup::{Claim, ClaimToken, InFlight};
pub use exec::{execute, ExecError, ExecEvent, ExecObserver, ExecOptions, JobReport, RunReport};
pub use fnv::Fnv1a;
pub use manifest::ManifestEntry;
pub use serve::{EvalService, ServeOptions, ServeReport};
pub use store::{ArtifactStore, StoreError};
