//! The resumable JSONL run manifest.
//!
//! One header line pinning the run configuration digest, then one line per
//! completed job carrying its stdout (escaped), a stdout digest, wall time
//! and artifact scorecard. The vendored `serde` is a no-op stub, so both
//! directions are hand-rolled against a fixed field order — the writer
//! below is the only producer, and the parser refuses anything it did not
//! write.
//!
//! Resume semantics: a rerun with the same configuration digest loads the
//! manifest, treats every parseable entry as "already completed" and skips
//! those jobs, replaying their recorded stdout. A run killed mid-write
//! leaves a truncated trailing line; the parser stops at the first
//! malformed line, so partially written entries simply count as "not
//! completed" and the job reruns.

use crate::fnv::fnv1a;
use std::fmt::Write as _;
use std::path::Path;

/// Manifest schema version (the header's `version` field).
const VERSION: u32 = 1;

/// One completed job, as recorded in (and recovered from) the manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Job id.
    pub job: String,
    /// Wall time the job took (ms).
    pub wall_ms: u64,
    /// Artifact-store hits while the job ran.
    pub artifact_hits: u64,
    /// Artifact-store misses while the job ran.
    pub artifact_misses: u64,
    /// ⟨name, digest⟩ pairs of artifacts the job produced or pinned.
    pub artifacts: Vec<(String, u64)>,
    /// The job's full stdout contribution.
    pub stdout: String,
}

impl ManifestEntry {
    /// Renders this entry as one JSON line (no trailing newline). The
    /// `stdout_digest` field is recomputed from `stdout` — the parser
    /// cross-checks it, so a corrupted line is rejected rather than
    /// replaying wrong bytes.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128 + self.stdout.len());
        let _ = write!(
            s,
            "{{\"job\":\"{}\",\"wall_ms\":{},\"hits\":{},\"misses\":{},\"artifacts\":[",
            escape(&self.job),
            self.wall_ms,
            self.artifact_hits,
            self.artifact_misses,
        );
        for (i, (name, digest)) in self.artifacts.iter().enumerate() {
            let _ = write!(
                s,
                "{}{{\"name\":\"{}\",\"digest\":\"{digest:016x}\"}}",
                if i == 0 { "" } else { "," },
                escape(name),
            );
        }
        let _ = write!(
            s,
            "],\"stdout_digest\":\"{:016x}\",\"stdout\":\"{}\"}}",
            fnv1a(self.stdout.as_bytes()),
            escape(&self.stdout),
        );
        s
    }

    /// Parses one manifest line; `None` on any structural mismatch
    /// (including a stdout digest that doesn't match the stdout bytes).
    pub fn parse(line: &str) -> Option<ManifestEntry> {
        let mut r = Scanner(line);
        r.literal("{\"job\":\"")?;
        let job = r.string()?;
        r.literal(",\"wall_ms\":")?;
        let wall_ms = r.integer()?;
        r.literal(",\"hits\":")?;
        let artifact_hits = r.integer()?;
        r.literal(",\"misses\":")?;
        let artifact_misses = r.integer()?;
        r.literal(",\"artifacts\":[")?;
        let mut artifacts = Vec::new();
        if !r.try_literal("]") {
            loop {
                r.literal("{\"name\":\"")?;
                let name = r.string()?;
                r.literal(",\"digest\":\"")?;
                let digest = r.hex_u64()?;
                r.literal("\"}")?;
                artifacts.push((name, digest));
                if r.try_literal("]") {
                    break;
                }
                r.literal(",")?;
            }
        }
        r.literal(",\"stdout_digest\":\"")?;
        let stdout_digest = r.hex_u64()?;
        r.literal("\",\"stdout\":\"")?;
        let stdout = r.string()?;
        r.literal("}")?;
        if !r.0.is_empty() || fnv1a(stdout.as_bytes()) != stdout_digest {
            return None;
        }
        Some(ManifestEntry {
            job,
            wall_ms,
            artifact_hits,
            artifact_misses,
            artifacts,
            stdout,
        })
    }
}

/// The header line for a run with configuration digest `config`.
pub fn header(config: u64) -> String {
    format!("{{\"manifest\":\"av-suite\",\"version\":{VERSION},\"config\":\"{config:016x}\"}}")
}

/// Parses a header line back into its configuration digest.
pub fn parse_header(line: &str) -> Option<u64> {
    let mut r = Scanner(line);
    r.literal("{\"manifest\":\"av-suite\",\"version\":")?;
    let version = r.integer()?;
    if version != u64::from(VERSION) {
        return None;
    }
    r.literal(",\"config\":\"")?;
    let config = r.hex_u64()?;
    r.literal("\"}")?;
    r.0.is_empty().then_some(config)
}

/// Loads the completed-job entries of the manifest at `path`, provided its
/// header matches `config`. An unreadable file or a header mismatch (a
/// different run configuration must not be resumed) loads nothing.
/// Malformed lines — typically one line truncated by a kill mid-write —
/// are skipped, so those jobs rerun; every line is independently validated
/// (strict grammar plus a stdout digest cross-check), so a garbled line
/// can never resurrect wrong bytes. If a job appears twice (a resumed run
/// appends), the last entry wins.
pub fn load(path: &Path, config: u64) -> Vec<ManifestEntry> {
    let Ok(contents) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut lines = contents.lines();
    if lines.next().and_then(parse_header) != Some(config) {
        return Vec::new();
    }
    let mut entries: Vec<ManifestEntry> = Vec::new();
    for entry in lines.filter_map(ManifestEntry::parse) {
        if let Some(slot) = entries.iter_mut().find(|e| e.job == entry.job) {
            *slot = entry;
        } else {
            entries.push(entry);
        }
    }
    entries
}

/// JSON string escaping, kept bit-compatible with the telemetry JSONL
/// writer (quotes, backslashes, control characters).
fn escape(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Strict cursor over one manifest line.
struct Scanner<'a>(&'a str);

impl Scanner<'_> {
    /// Consumes an exact literal or fails.
    fn literal(&mut self, lit: &str) -> Option<()> {
        self.0 = self.0.strip_prefix(lit)?;
        Some(())
    }

    /// Consumes `lit` if present, reporting whether it did.
    fn try_literal(&mut self, lit: &str) -> bool {
        match self.0.strip_prefix(lit) {
            Some(rest) => {
                self.0 = rest;
                true
            }
            None => false,
        }
    }

    /// Consumes an unsigned decimal integer.
    fn integer(&mut self) -> Option<u64> {
        let end = self
            .0
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(self.0.len());
        let (digits, rest) = self.0.split_at(end);
        self.0 = rest;
        digits.parse().ok()
    }

    /// Consumes exactly 16 lowercase hex digits.
    fn hex_u64(&mut self) -> Option<u64> {
        let digits = self.0.get(..16)?;
        if !digits.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        self.0 = &self.0[16..];
        u64::from_str_radix(digits, 16).ok()
    }

    /// Consumes an escaped string body up to (and including) its closing
    /// quote, unescaping as it goes.
    fn string(&mut self) -> Option<String> {
        let mut out = String::new();
        let mut chars = self.0.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    self.0 = &self.0[i + 1..];
                    return Some(out);
                }
                '\\' => {
                    let (_, esc) = chars.next()?;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let start = i + 2;
                            let hex = self.0.get(start..start + 4)?;
                            let code = u32::from_str_radix(hex, 16).ok()?;
                            out.push(char::from_u32(code)?);
                            // Skip the 4 hex digits.
                            for _ in 0..4 {
                                chars.next()?;
                            }
                        }
                        _ => return None,
                    }
                }
                c => out.push(c),
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ManifestEntry {
        ManifestEntry {
            job: "oracle:DS-1:Disappear".into(),
            wall_ms: 1234,
            artifact_hits: 2,
            artifact_misses: 1,
            artifacts: vec![("oracle:DS-1:Disappear".into(), 0xdead_beef_0000_0001)],
            stdout: "Table II\n  line \"quoted\"\tand\\slash\n".into(),
        }
    }

    #[test]
    fn entry_round_trips_through_json() {
        let entry = sample();
        let line = entry.to_json();
        assert_eq!(ManifestEntry::parse(&line), Some(entry));

        // No-artifact entries round-trip too.
        let bare = ManifestEntry {
            artifacts: Vec::new(),
            ..sample()
        };
        assert_eq!(ManifestEntry::parse(&bare.to_json()), Some(bare));
    }

    #[test]
    fn header_round_trips_and_pins_config() {
        let line = header(0x1234_5678_9abc_def0);
        assert_eq!(parse_header(&line), Some(0x1234_5678_9abc_def0));
        assert_eq!(parse_header("{\"manifest\":\"other\"}"), None);
    }

    #[test]
    fn truncated_and_corrupted_lines_are_rejected() {
        let line = sample().to_json();
        for cut in [0, 1, 10, line.len() / 2, line.len() - 1] {
            assert_eq!(ManifestEntry::parse(&line[..cut]), None, "cut at {cut}");
        }
        // Flip a stdout byte: the digest cross-check rejects it.
        let tampered = line.replace("Table II", "Fable II");
        assert_eq!(ManifestEntry::parse(&tampered), None);
    }

    #[test]
    fn load_skips_mismatched_config_and_stops_at_truncation() {
        let dir = std::env::temp_dir().join(format!("suite-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("m.jsonl");

        let a = ManifestEntry {
            job: "a".into(),
            ..sample()
        };
        let b = ManifestEntry {
            job: "b".into(),
            ..sample()
        };
        let full = format!("{}\n{}\n{}\n", header(42), a.to_json(), b.to_json());
        std::fs::write(&path, &full).expect("write");
        assert_eq!(load(&path, 42), vec![a.clone(), b.clone()]);
        assert_eq!(load(&path, 43), Vec::new(), "config mismatch loads nothing");

        // Kill mid-write: half of b's line is on disk. a survives, b reruns.
        let cut = full.len() - b.to_json().len() / 2 - 1;
        std::fs::write(&path, &full[..cut]).expect("write truncated");
        assert_eq!(load(&path, 42), vec![a.clone()]);

        // A resumed run terminated the dangling line and appended b again
        // (the executor's newline guard): the garbled line is skipped and
        // the appended entry wins.
        let resumed = format!("{}\n{}\n", &full[..cut], b.to_json());
        std::fs::write(&path, &resumed).expect("write resumed");
        assert_eq!(load(&path, 42), vec![a, b]);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
