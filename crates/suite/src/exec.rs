//! The work-stealing DAG executor.
//!
//! A fixed pool of workers shares one ready queue behind a mutex+condvar:
//! whenever a job's last dependency completes it becomes ready, and the
//! first idle worker claims it. There is no per-phase barrier — a figure
//! job whose oracle is done runs while other oracles are still training,
//! which is what keeps the pool busy on the wide-then-narrow paper DAG.
//!
//! Completed jobs are appended to the JSONL manifest as they finish (see
//! [`crate::manifest`]); on a resumed run, jobs with a recovered entry are
//! skipped outright and their recorded stdout replayed. Job panics abort
//! the run with [`ExecError::JobPanicked`] after in-flight jobs finish.

use crate::dag::Dag;
use crate::manifest::{self, ManifestEntry};
use av_telemetry::{Telemetry, TraceEvent};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// A live progress notification from [`execute`], delivered to the
/// [`ExecOptions::observer`] callback as jobs start and finish. This is the
/// hook the evaluation daemon uses to stream per-request events; callbacks
/// run outside the pool lock and may be invoked concurrently from several
/// workers.
#[derive(Debug)]
pub enum ExecEvent<'a> {
    /// A job began executing.
    JobStarted {
        /// The job's id.
        job: &'a str,
    },
    /// A job finished executing, or was recovered from the manifest
    /// (`report.skipped`).
    JobFinished {
        /// The finished job's report.
        report: &'a JobReport,
    },
}

/// The observer callback type (see [`ExecOptions::observer`]).
pub type ExecObserver = Arc<dyn Fn(ExecEvent<'_>) + Send + Sync>;

/// How one run of [`execute`] should behave. Built fluently:
///
/// ```
/// # use av_suite::ExecOptions;
/// let opts = ExecOptions::new().workers(4).manifest("run.jsonl");
/// ```
pub struct ExecOptions {
    workers: usize,
    manifest: Option<PathBuf>,
    resume: bool,
    config_key: u64,
    telemetry: Telemetry,
    observer: Option<ExecObserver>,
}

impl std::fmt::Debug for ExecOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecOptions")
            .field("workers", &self.workers)
            .field("manifest", &self.manifest)
            .field("resume", &self.resume)
            .field("config_key", &self.config_key)
            .field("observer", &self.observer.as_ref().map(|_| "…"))
            .finish_non_exhaustive()
    }
}

impl ExecOptions {
    /// The defaults: 1 worker, no manifest, resume on, config key 0,
    /// telemetry disabled, no observer.
    pub fn new() -> ExecOptions {
        ExecOptions {
            workers: 1,
            manifest: None,
            resume: true,
            config_key: 0,
            telemetry: Telemetry::disabled(),
            observer: None,
        }
    }

    /// Worker threads (`--jobs`). Must be ≥ 1 — [`execute`] rejects 0.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> ExecOptions {
        self.workers = workers;
        self
    }

    /// Manifest path; unset disables persistence (and therefore resume).
    #[must_use]
    pub fn manifest(mut self, path: impl Into<PathBuf>) -> ExecOptions {
        self.manifest = Some(path.into());
        self
    }

    /// Whether to load the manifest and skip recovered jobs. When false,
    /// an existing manifest is truncated and the run starts fresh.
    #[must_use]
    pub fn resume(mut self, resume: bool) -> ExecOptions {
        self.resume = resume;
        self
    }

    /// Digest of the run configuration; a manifest written under a
    /// different digest is ignored wholesale.
    #[must_use]
    pub fn config_key(mut self, key: u64) -> ExecOptions {
        self.config_key = key;
        self
    }

    /// Telemetry handle for `JobStarted`/`JobFinished` events.
    #[must_use]
    pub fn telemetry(mut self, telemetry: Telemetry) -> ExecOptions {
        self.telemetry = telemetry;
        self
    }

    /// Streams [`ExecEvent`]s as jobs start and finish (the daemon's
    /// per-request event feed).
    #[must_use]
    pub fn observer(mut self, observer: impl Fn(ExecEvent<'_>) + Send + Sync + 'static) -> Self {
        self.observer = Some(Arc::new(observer));
        self
    }

    fn notify(&self, event: ExecEvent<'_>) {
        if let Some(observer) = &self.observer {
            observer(event);
        }
    }
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions::new()
    }
}

/// Why a run failed.
#[derive(Debug)]
pub enum ExecError {
    /// `--jobs 0` is not a pool.
    ZeroWorkers,
    /// A job's closure panicked; the run stopped after in-flight jobs.
    JobPanicked(String),
    /// The manifest file could not be created or written.
    Manifest(std::io::Error),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::ZeroWorkers => write!(f, "worker count must be at least 1"),
            ExecError::JobPanicked(job) => write!(f, "job {job:?} panicked"),
            ExecError::Manifest(e) => write!(f, "manifest I/O failed: {e}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// One job's slice of a finished run.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Job id.
    pub id: String,
    /// Whether the job contributes to suite stdout.
    pub emits_stdout: bool,
    /// The job's stdout contribution (recorded stdout when skipped).
    pub stdout: String,
    /// Wall time (this run, or the recorded time when skipped).
    pub wall_ms: u64,
    /// Whether the job was skipped via the resumed manifest.
    pub skipped: bool,
    /// Artifact-store hits while the job ran.
    pub artifact_hits: u64,
    /// Artifact-store misses while the job ran.
    pub artifact_misses: u64,
    /// ⟨name, digest⟩ pairs the job reported.
    pub artifacts: Vec<(String, u64)>,
}

/// The finished run: per-job reports in DAG declaration order plus pool
/// utilization numbers.
#[derive(Debug)]
pub struct RunReport {
    /// Per-job reports, in DAG declaration order.
    pub jobs: Vec<JobReport>,
    /// Wall time of the whole run.
    pub wall: Duration,
    /// Workers the pool actually spawned.
    pub workers: usize,
    /// Summed busy time across workers.
    pub busy: Duration,
}

impl RunReport {
    /// The report for job `id`, if present.
    pub fn job(&self, id: &str) -> Option<&JobReport> {
        self.jobs.iter().find(|j| j.id == id)
    }

    /// Fraction of worker-seconds spent running jobs (0 when nothing ran).
    pub fn utilization(&self) -> f64 {
        let capacity = self.wall.as_secs_f64() * self.workers as f64;
        if capacity > 0.0 {
            (self.busy.as_secs_f64() / capacity).min(1.0)
        } else {
            0.0
        }
    }

    /// Jobs that executed this run (not skipped).
    pub fn jobs_run(&self) -> usize {
        self.jobs.iter().filter(|j| !j.skipped).count()
    }

    /// Jobs skipped via the resumed manifest.
    pub fn jobs_skipped(&self) -> usize {
        self.jobs.len() - self.jobs_run()
    }

    /// Artifact hits/misses summed over jobs that executed this run.
    pub fn artifact_totals(&self) -> (u64, u64) {
        self.jobs
            .iter()
            .filter(|j| !j.skipped)
            .fold((0, 0), |(h, m), j| {
                (h + j.artifact_hits, m + j.artifact_misses)
            })
    }

    /// Renders the end-of-run summary table (for stderr — stdout belongs
    /// to the jobs). The final `totals` line is machine-greppable; CI
    /// asserts on it.
    pub fn render_summary(&self) -> String {
        let mut s = String::new();
        let (hits, misses) = self.artifact_totals();
        let _ = writeln!(
            s,
            "[suite] {} jobs on {} workers in {:.2} s (utilization {:.0}%)",
            self.jobs.len(),
            self.workers,
            self.wall.as_secs_f64(),
            100.0 * self.utilization(),
        );
        let _ = writeln!(
            s,
            "[suite] {:<28} {:>8} {:>9} {:>6} {:>7}",
            "job", "status", "wall(s)", "hits", "misses"
        );
        for job in &self.jobs {
            let _ = writeln!(
                s,
                "[suite] {:<28} {:>8} {:>9.2} {:>6} {:>7}",
                job.id,
                if job.skipped { "skipped" } else { "run" },
                job.wall_ms as f64 / 1000.0,
                job.artifact_hits,
                job.artifact_misses,
            );
        }
        let _ = writeln!(
            s,
            "[suite] totals jobs_run={} jobs_skipped={} artifact_hits={hits} artifact_misses={misses}",
            self.jobs_run(),
            self.jobs_skipped(),
        );
        s
    }
}

/// Shared scheduler state behind the pool's mutex.
struct PoolState {
    ready: VecDeque<usize>,
    remaining_deps: Vec<usize>,
    results: Vec<Option<JobReport>>,
    completed: usize,
    total: usize,
    failed: Option<String>,
    manifest: Option<std::fs::File>,
    busy: Duration,
}

impl PoolState {
    fn done(&self) -> bool {
        self.completed == self.total || self.failed.is_some()
    }
}

/// Executes `dag` under `opts`. Reports come back in DAG declaration
/// order; stdout-emitting jobs' strings concatenated in that order are the
/// suite's stdout.
pub fn execute(dag: &Dag, opts: &ExecOptions) -> Result<RunReport, ExecError> {
    if opts.workers == 0 {
        return Err(ExecError::ZeroWorkers);
    }
    let started = Instant::now();
    let n = dag.len();
    let dependents = dag.dependents();

    // Recover completed jobs from the manifest, then (re)open it for
    // appending — a fresh run truncates and rewrites the header.
    let recovered: Vec<Option<ManifestEntry>> = {
        let loaded = match (&opts.manifest, opts.resume) {
            (Some(path), true) => manifest::load(path, opts.config_key),
            _ => Vec::new(),
        };
        dag.jobs()
            .iter()
            .map(|j| loaded.iter().find(|e| e.job == j.id()).cloned())
            .collect()
    };
    let manifest_file = match &opts.manifest {
        Some(path) => {
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                std::fs::create_dir_all(parent).map_err(ExecError::Manifest)?;
            }
            let fresh = !opts.resume || !recovered.iter().any(Option::is_some);
            // A killed run can leave a truncated final line with no
            // newline; appending straight after it would garble the next
            // entry, so terminate the line first.
            let needs_newline = !fresh
                && std::fs::read(path)
                    .ok()
                    .is_some_and(|bytes| bytes.last().is_some_and(|&b| b != b'\n'));
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(!fresh)
                .write(true)
                .truncate(fresh)
                .open(path)
                .map_err(ExecError::Manifest)?;
            if fresh {
                writeln!(file, "{}", manifest::header(opts.config_key))
                    .map_err(ExecError::Manifest)?;
            } else if needs_newline {
                writeln!(file).map_err(ExecError::Manifest)?;
            }
            Some(file)
        }
        None => None,
    };

    let mut state = PoolState {
        ready: VecDeque::new(),
        remaining_deps: dag.jobs().iter().map(|j| j.dep_ids().len()).collect(),
        results: (0..n).map(|_| None).collect(),
        completed: 0,
        total: n,
        failed: None,
        manifest: manifest_file,
        busy: Duration::ZERO,
    };

    // Seed the queue: manifest-recovered jobs complete instantly (their
    // dependents unblock), the rest become ready once dep-free. Record
    // every skipped result BEFORE running any completion — complete()
    // queues dependents whose result slot is still empty, so interleaving
    // would queue (and execute) a skipped job whose dependency happened to
    // be skip-processed first.
    let mut to_skip: Vec<usize> = Vec::new();
    for (i, entry) in recovered.into_iter().enumerate() {
        if let Some(entry) = entry {
            state.results[i] = Some(JobReport {
                id: dag.jobs()[i].id().to_string(),
                emits_stdout: dag.jobs()[i].is_stdout_job(),
                stdout: entry.stdout,
                wall_ms: entry.wall_ms,
                skipped: true,
                artifact_hits: entry.artifact_hits,
                artifact_misses: entry.artifact_misses,
                artifacts: entry.artifacts,
            });
            to_skip.push(i);
        }
    }
    for i in to_skip {
        if let Some(report) = &state.results[i] {
            opts.notify(ExecEvent::JobFinished { report });
        }
        complete(&mut state, &dependents, i);
    }
    for i in 0..n {
        // complete() above may already have queued jobs unblocked by
        // skipped dependencies — don't queue those twice.
        if state.results[i].is_none() && state.remaining_deps[i] == 0 && !state.ready.contains(&i) {
            state.ready.push_back(i);
        }
    }

    let outstanding = n - state.completed;
    let workers = opts.workers.min(outstanding.max(1));
    let pool = Mutex::new(state);
    let work_available = Condvar::new();

    if outstanding > 0 {
        crossbeam::thread::scope(|scope| {
            for _ in 0..workers {
                let (pool, work_available, dag, dependents, opts) =
                    (&pool, &work_available, dag, &dependents, opts);
                scope.spawn(move |_| {
                    loop {
                        let i = {
                            let mut state = pool.lock().expect("pool lock");
                            loop {
                                if state.done() {
                                    return;
                                }
                                if let Some(i) = state.ready.pop_front() {
                                    break i;
                                }
                                state = work_available.wait(state).expect("pool lock");
                            }
                        };
                        let job = &dag.jobs()[i];
                        opts.telemetry.emit(0.0, || TraceEvent::JobStarted {
                            job: job.id().to_string(),
                        });
                        opts.notify(ExecEvent::JobStarted { job: job.id() });
                        let job_started = Instant::now();
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                job.execute()
                            }));
                        let wall = job_started.elapsed();
                        opts.telemetry.emit(0.0, || TraceEvent::JobFinished {
                            job: job.id().to_string(),
                        });
                        // Build (and stream) the report outside the pool
                        // lock — observers may do I/O.
                        let report = outcome.as_ref().ok().map(|outcome| JobReport {
                            id: job.id().to_string(),
                            emits_stdout: job.is_stdout_job(),
                            stdout: outcome.stdout.clone(),
                            wall_ms: wall.as_millis() as u64,
                            skipped: false,
                            artifact_hits: outcome.artifact_hits,
                            artifact_misses: outcome.artifact_misses,
                            artifacts: outcome.artifacts.clone(),
                        });
                        if let Some(report) = &report {
                            opts.notify(ExecEvent::JobFinished { report });
                        }

                        let mut state = pool.lock().expect("pool lock");
                        state.busy += wall;
                        match report {
                            Some(report) => {
                                let entry = ManifestEntry {
                                    job: report.id.clone(),
                                    wall_ms: report.wall_ms,
                                    artifact_hits: report.artifact_hits,
                                    artifact_misses: report.artifact_misses,
                                    artifacts: report.artifacts.clone(),
                                    stdout: report.stdout.clone(),
                                };
                                if let Some(file) = &mut state.manifest {
                                    let _ = writeln!(file, "{}", entry.to_json());
                                    let _ = file.flush();
                                }
                                state.results[i] = Some(report);
                                complete(&mut state, dependents, i);
                            }
                            None => {
                                state.failed = Some(job.id().to_string());
                            }
                        }
                        // Wake everyone: new ready work, or done/failed.
                        work_available.notify_all();
                    }
                });
            }
        })
        .expect("suite worker pool panicked");
    }

    let state = pool.into_inner().expect("pool lock");
    if let Some(job) = state.failed {
        return Err(ExecError::JobPanicked(job));
    }
    let jobs = state
        .results
        .into_iter()
        .map(|r| r.expect("all jobs completed"))
        .collect();
    Ok(RunReport {
        jobs,
        wall: started.elapsed(),
        workers,
        busy: state.busy,
    })
}

/// Marks job `i` completed and promotes newly unblocked dependents.
fn complete(state: &mut PoolState, dependents: &[Vec<usize>], i: usize) {
    state.completed += 1;
    for &d in &dependents[i] {
        state.remaining_deps[d] -= 1;
        if state.remaining_deps[d] == 0 && state.results[d].is_none() {
            state.ready.push_back(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::{Job, JobOutcome};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn counting_dag(counter: &Arc<AtomicU64>) -> Dag {
        // data → oracle → {table2, fig6}; fig5 independent.
        let mk = |id: &str, body: &str| {
            let counter = counter.clone();
            let body = body.to_string();
            Job::new(id, move || {
                counter.fetch_add(1, Ordering::Relaxed);
                JobOutcome {
                    stdout: body.clone(),
                    artifact_hits: 1,
                    artifact_misses: 0,
                    artifacts: vec![(body.clone(), crate::fnv::fnv1a(body.as_bytes()))],
                }
            })
        };
        Dag::new(vec![
            mk("data", ""),
            mk("oracle", "").dep("data"),
            mk("table2", "TABLE2\n").dep("oracle").emits_stdout(),
            mk("fig5", "FIG5\n").emits_stdout(),
            mk("fig6", "FIG6\n").dep("oracle").emits_stdout(),
        ])
        .expect("valid dag")
    }

    fn stdout_of(report: &RunReport) -> String {
        report
            .jobs
            .iter()
            .filter(|j| j.emits_stdout)
            .map(|j| j.stdout.as_str())
            .collect()
    }

    #[test]
    fn worker_count_does_not_change_outputs() {
        let counter = Arc::new(AtomicU64::new(0));
        let reference = execute(&counting_dag(&counter), &ExecOptions::default()).expect("run");
        assert_eq!(stdout_of(&reference), "TABLE2\nFIG5\nFIG6\n");
        for workers in [2, 4, 8] {
            let report = execute(
                &counting_dag(&counter),
                &ExecOptions::new().workers(workers),
            )
            .expect("run");
            assert_eq!(
                stdout_of(&report),
                stdout_of(&reference),
                "workers={workers}"
            );
            let artifacts: Vec<_> = report.jobs.iter().map(|j| j.artifacts.clone()).collect();
            let expected: Vec<_> = reference.jobs.iter().map(|j| j.artifacts.clone()).collect();
            assert_eq!(artifacts, expected, "workers={workers}");
        }
        // 4 executions of 5 jobs each, nothing skipped.
        assert_eq!(counter.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn zero_workers_is_an_error() {
        let counter = Arc::new(AtomicU64::new(0));
        let err = execute(&counting_dag(&counter), &ExecOptions::new().workers(0)).unwrap_err();
        assert!(matches!(err, ExecError::ZeroWorkers));
    }

    #[test]
    fn manifest_resume_skips_completed_jobs() {
        let dir = std::env::temp_dir().join(format!("suite-exec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("manifest.jsonl");
        let counter = Arc::new(AtomicU64::new(0));
        let opts = ExecOptions::new().workers(2).manifest(path.clone());

        let first = execute(&counting_dag(&counter), &opts).expect("first run");
        assert_eq!(first.jobs_run(), 5);
        assert_eq!(counter.load(Ordering::Relaxed), 5);

        // Rerun: everything recovered, nothing executed, same stdout.
        let second = execute(&counting_dag(&counter), &opts).expect("second run");
        assert_eq!(second.jobs_run(), 0);
        assert_eq!(second.jobs_skipped(), 5);
        assert_eq!(counter.load(Ordering::Relaxed), 5, "no job re-executed");
        assert_eq!(stdout_of(&second), stdout_of(&first));
        assert_eq!(second.artifact_totals(), (0, 0), "skipped jobs don't count");

        // Kill mid-run: drop the trailing half-line; those jobs rerun.
        let contents = std::fs::read_to_string(&path).expect("manifest");
        let keep: Vec<&str> = contents.lines().take(3).collect(); // header + 2 jobs
        let half = contents.lines().nth(3).expect("4th line");
        std::fs::write(
            &path,
            format!("{}\n{}", keep.join("\n"), &half[..half.len() / 2]),
        )
        .expect("truncate");
        let third = execute(&counting_dag(&counter), &opts).expect("third run");
        assert_eq!(third.jobs_skipped(), 2);
        assert_eq!(third.jobs_run(), 3);
        assert_eq!(stdout_of(&third), stdout_of(&first));

        // A config change invalidates the manifest wholesale.
        let fourth = execute(
            &counting_dag(&counter),
            &ExecOptions::new()
                .workers(2)
                .manifest(path.clone())
                .config_key(99),
        )
        .expect("fourth run");
        assert_eq!(fourth.jobs_run(), 5);

        // resume=false reruns everything even with a matching manifest.
        let fifth = execute(
            &counting_dag(&counter),
            &ExecOptions::new()
                .workers(2)
                .manifest(path.clone())
                .resume(false),
        )
        .expect("fifth run");
        assert_eq!(fifth.jobs_run(), 5);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_never_reruns_a_skipped_job_whose_dep_was_also_skipped() {
        // Regression: a → b → {c, d}. With a AND b recovered from the
        // manifest, processing a's completion before b's result was
        // recorded used to queue b for execution anyway — b then completed
        // twice and underflowed c/d's dependency counters.
        let dir = std::env::temp_dir().join(format!("suite-skipchain-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("manifest.jsonl");
        let counter = Arc::new(AtomicU64::new(0));
        let mk = |id: &str| {
            let counter = counter.clone();
            Job::new(id, move || {
                counter.fetch_add(1, Ordering::Relaxed);
                JobOutcome::default()
            })
        };
        let dag = Dag::new(vec![
            mk("a"),
            mk("b").dep("a"),
            mk("c").dep("b"),
            mk("d").dep("b"),
        ])
        .expect("valid dag");
        let opts = ExecOptions::new().workers(2).manifest(path.clone());
        execute(&dag, &opts).expect("first run");
        assert_eq!(counter.load(Ordering::Relaxed), 4);

        // Keep header + a + b; c and d rerun, b must NOT.
        let contents = std::fs::read_to_string(&path).expect("manifest");
        let keep: Vec<&str> = contents.lines().take(3).collect();
        std::fs::write(&path, format!("{}\n", keep.join("\n"))).expect("truncate");
        let resumed = execute(&dag, &opts).expect("resumed run");
        assert_eq!(resumed.jobs_skipped(), 2);
        assert_eq!(resumed.jobs_run(), 2);
        assert_eq!(counter.load(Ordering::Relaxed), 6, "only c and d reran");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn panicking_job_fails_the_run() {
        let dag = Dag::new(vec![
            Job::new("ok", JobOutcome::default),
            Job::new("boom", || panic!("job exploded")),
            Job::new("downstream", JobOutcome::default).dep("boom"),
        ])
        .expect("valid dag");
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output clean
        let err = execute(&dag, &ExecOptions::default()).unwrap_err();
        std::panic::set_hook(prev);
        assert!(
            matches!(err, ExecError::JobPanicked(ref j) if j == "boom"),
            "{err}"
        );
    }

    #[test]
    fn observer_streams_started_and_finished_for_run_and_skipped_jobs() {
        let dir = std::env::temp_dir().join(format!("suite-observer-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("manifest.jsonl");
        type EventLog = Arc<Mutex<Vec<(String, String, bool)>>>;
        let counter = Arc::new(AtomicU64::new(0));
        let events: EventLog = Arc::new(Mutex::new(Vec::new()));
        let opts = |events: &EventLog| {
            let events = events.clone();
            ExecOptions::new()
                .workers(2)
                .manifest(path.clone())
                .observer(move |event| {
                    let mut log = events.lock().expect("event log");
                    match event {
                        ExecEvent::JobStarted { job } => {
                            log.push(("started".into(), job.to_string(), false));
                        }
                        ExecEvent::JobFinished { report } => {
                            log.push(("finished".into(), report.id.clone(), report.skipped));
                        }
                    }
                })
        };

        execute(&counting_dag(&counter), &opts(&events)).expect("cold run");
        {
            let log = events.lock().expect("event log");
            let started = log.iter().filter(|(k, _, _)| k == "started").count();
            let finished = log.iter().filter(|(k, _, _)| k == "finished").count();
            assert_eq!((started, finished), (5, 5), "every job start/finish seen");
            assert!(log.iter().all(|(_, _, skipped)| !skipped));
            // A job's finish never precedes its start.
            for (kind, job, _) in log.iter() {
                if kind == "finished" {
                    assert!(
                        log.iter()
                            .position(|(k, j, _)| k == "started" && j == job)
                            .unwrap()
                            < log
                                .iter()
                                .position(|(k, j, _)| k == "finished" && j == job)
                                .unwrap()
                    );
                }
            }
        }

        // Resumed run: recovered jobs stream as finished+skipped, with no
        // start event.
        events.lock().expect("event log").clear();
        execute(&counting_dag(&counter), &opts(&events)).expect("warm run");
        let log = events.lock().expect("event log");
        assert_eq!(log.len(), 5, "one finished event per recovered job");
        assert!(log
            .iter()
            .all(|(k, _, skipped)| k == "finished" && *skipped));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_mentions_every_job_and_totals() {
        let counter = Arc::new(AtomicU64::new(0));
        let report = execute(&counting_dag(&counter), &ExecOptions::default()).expect("run");
        let summary = report.render_summary();
        for id in ["data", "oracle", "table2", "fig5", "fig6"] {
            assert!(summary.contains(id), "summary lists {id}:\n{summary}");
        }
        assert!(summary.contains("totals jobs_run=5 jobs_skipped=0 artifact_hits=5"));
    }
}
