//! The long-lived evaluation service.
//!
//! `suite serve` turns the one-shot orchestrator into a daemon: clients
//! send newline-delimited JSON [`EvalRequest`]s over stdin/stdout
//! ([`serve_lines`]) or a Unix socket ([`serve_unix`]), and each request
//! streams back [`EvalEvent`] lines — accepted, job-started, job-finished,
//! stdout-chunk — terminated by exactly one done/error response.
//!
//! Three properties define the service:
//!
//! - **One shared store.** Every request executes against the same
//!   [`crate::store::ArtifactStore`], whose in-flight claim registry
//!   (see [`crate::dedup`]) collapses concurrent identical computations:
//!   two requests needing the same oracle block on a single training job.
//! - **Admission control.** A bounded pool of request slots drains a
//!   two-class FIFO queue — `interactive` requests are admitted before any
//!   queued `batch` request — so a 2000-run campaign cannot starve a quick
//!   `--only fig5` query for longer than the slot bound.
//! - **Hostile-input safety.** Malformed request lines produce a typed
//!   error response and nothing else; the daemon never panics or exits on
//!   bad input. Shutdown is explicit: the `{"shutdown":true}` sentinel (or
//!   stdin EOF) stops admission, drains queued requests, and returns.
//!
//! Everything is std-only threads over the vendored `crossbeam::scope` —
//! no async runtime. Per-request event ordering is guaranteed (one writer
//! mutex per client); cross-request interleaving is not, which is why every
//! event carries its request id.

use crate::api::{ClientMessage, ErrorCode, EvalEvent, EvalRequest, EvalResponse};
use crate::dag::Dag;
use crate::exec::{execute, ExecEvent, ExecOptions};
use av_telemetry::{Telemetry, TraceEvent};
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What the daemon needs from the experiment layer: turn a validated
/// request into an executable DAG, and report the shared store's dedup
/// counters. The `suite` binary implements this over `paper_dag`; tests
/// implement it over synthetic DAGs.
pub trait EvalService: Send + Sync {
    /// Builds the subgraph for `req`. Errors become a typed
    /// [`EvalResponse::Error`] for the client (never a panic).
    fn dag_for(&self, req: &EvalRequest) -> Result<Dag, (ErrorCode, String)>;

    /// ⟨led, coalesced⟩ counters of the shared store's in-flight dedup
    /// registry (see [`crate::store::ArtifactStore::dedup_counters`]).
    fn dedup_counters(&self) -> (u64, u64) {
        (0, 0)
    }
}

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Concurrent requests executing at once; further requests queue in
    /// priority-FIFO order. This is the admission bound that keeps a small
    /// request's wait behind a large one finite.
    pub request_slots: usize,
    /// Per-request worker-pool cap: a request's `jobs` field is clamped to
    /// this, so no client can monopolize the machine.
    pub max_workers: usize,
    /// Telemetry handle for `RequestAccepted`/`RequestFinished` events.
    pub telemetry: Telemetry,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            request_slots: 2,
            max_workers: 8,
            telemetry: Telemetry::disabled(),
        }
    }
}

/// What one daemon lifetime processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeReport {
    /// Requests admitted to a slot (including ones that ended in a typed
    /// error).
    pub requests: u64,
    /// Typed error responses emitted — parse failures and failed requests.
    pub errors: u64,
}

impl ServeReport {
    /// Renders the machine-greppable shutdown summary (for stderr), with
    /// the shared store's dedup counters appended — CI asserts on the
    /// `dedup led=` value to prove cross-request coalescing.
    pub fn render_summary(&self, dedup: (u64, u64)) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "[serve] requests={} errors={} dedup led={} coalesced={}",
            self.requests, self.errors, dedup.0, dedup.1
        );
        s
    }
}

/// A line-oriented writer shared between the admission loop and request
/// slots: one mutex per client connection keeps each event line atomic.
#[derive(Clone)]
struct SharedWriter {
    inner: Arc<Mutex<Box<dyn Write + Send>>>,
}

impl SharedWriter {
    fn new(writer: Box<dyn Write + Send>) -> SharedWriter {
        SharedWriter {
            inner: Arc::new(Mutex::new(writer)),
        }
    }

    /// Writes one event line. Failures are ignored — a client that hung up
    /// mid-request loses its remaining events, nothing else.
    fn emit(&self, line: &str) {
        let mut writer = self.inner.lock().expect("serve writer lock");
        let _ = writeln!(writer, "{line}");
        let _ = writer.flush();
    }
}

/// One admitted unit of work: the request plus the connection to answer on.
struct Work {
    req: EvalRequest,
    writer: SharedWriter,
}

#[derive(Default)]
struct QueueInner {
    interactive: VecDeque<Work>,
    batch: VecDeque<Work>,
    closed: bool,
}

/// The two-class FIFO admission queue.
struct RequestQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
}

impl RequestQueue {
    fn new() -> RequestQueue {
        RequestQueue {
            inner: Mutex::new(QueueInner::default()),
            ready: Condvar::new(),
        }
    }

    fn push(&self, work: Work) {
        let mut q = self.inner.lock().expect("request queue lock");
        match work.req.priority {
            crate::api::Priority::Interactive => q.interactive.push_back(work),
            crate::api::Priority::Batch => q.batch.push_back(work),
        }
        drop(q);
        self.ready.notify_one();
    }

    fn close(&self) {
        self.inner.lock().expect("request queue lock").closed = true;
        self.ready.notify_all();
    }

    /// Pops the next request — interactive before batch, FIFO within each
    /// class — blocking until work arrives or the queue closes. `None`
    /// means closed *and* drained: queued requests always complete.
    fn pop(&self) -> Option<Work> {
        let mut q = self.inner.lock().expect("request queue lock");
        loop {
            if let Some(work) = q.interactive.pop_front().or_else(|| q.batch.pop_front()) {
                return Some(work);
            }
            if q.closed {
                return None;
            }
            q = self.ready.wait(q).expect("request queue lock");
        }
    }
}

/// Executes one admitted request end to end, streaming events to its
/// writer. Returns whether the request completed successfully.
fn run_request(service: &dyn EvalService, opts: &ServeOptions, work: Work) -> bool {
    let Work { req, writer } = work;
    opts.telemetry.emit(0.0, || TraceEvent::RequestAccepted {
        request: req.id.clone(),
    });
    let finish = |ok: bool| {
        opts.telemetry.emit(0.0, || TraceEvent::RequestFinished {
            request: req.id.clone(),
        });
        ok
    };

    let dag = match service.dag_for(&req) {
        Ok(dag) => dag,
        Err((code, message)) => {
            writer.emit(
                &EvalEvent::Response(EvalResponse::Error {
                    request: req.id.clone(),
                    code,
                    message,
                })
                .to_json(),
            );
            return finish(false);
        }
    };
    writer.emit(
        &EvalEvent::Accepted {
            request: req.id.clone(),
            jobs: dag.len(),
        }
        .to_json(),
    );

    let started = Instant::now();
    let observer_writer = writer.clone();
    let observer_request = req.id.clone();
    let exec_opts = ExecOptions::new()
        .workers(req.jobs.clamp(1, opts.max_workers.max(1)))
        .observer(move |event| match event {
            ExecEvent::JobStarted { job } => observer_writer.emit(
                &EvalEvent::JobStarted {
                    request: observer_request.clone(),
                    job: job.to_string(),
                }
                .to_json(),
            ),
            ExecEvent::JobFinished { report } => {
                observer_writer.emit(
                    &EvalEvent::JobFinished {
                        request: observer_request.clone(),
                        job: report.id.clone(),
                        wall_ms: report.wall_ms,
                        hits: report.artifact_hits,
                        misses: report.artifact_misses,
                        skipped: report.skipped,
                    }
                    .to_json(),
                );
                if report.emits_stdout {
                    observer_writer.emit(
                        &EvalEvent::StdoutChunk {
                            request: observer_request.clone(),
                            job: report.id.clone(),
                            stdout: report.stdout.clone(),
                        }
                        .to_json(),
                    );
                }
            }
        });

    let response = match execute(&dag, &exec_opts) {
        Ok(report) => {
            let (hits, misses) = report.artifact_totals();
            let (led, coalesced) = service.dedup_counters();
            EvalResponse::Done {
                request: req.id.clone(),
                jobs_run: report.jobs_run() as u64,
                jobs_skipped: report.jobs_skipped() as u64,
                artifact_hits: hits,
                artifact_misses: misses,
                dedup_led: led,
                dedup_coalesced: coalesced,
                stdout_jobs: report
                    .jobs
                    .iter()
                    .filter(|j| j.emits_stdout)
                    .map(|j| j.id.clone())
                    .collect(),
                wall_ms: started.elapsed().as_millis() as u64,
            }
        }
        Err(e) => EvalResponse::Error {
            request: req.id.clone(),
            code: ErrorCode::ExecFailed,
            message: e.to_string(),
        },
    };
    let ok = matches!(response, EvalResponse::Done { .. });
    writer.emit(&EvalEvent::Response(response).to_json());
    finish(ok)
}

/// Parses one admission-loop line and enqueues it. Returns `true` if the
/// line was the shutdown sentinel.
fn admit_line(
    line: &str,
    writer: &SharedWriter,
    queue: &RequestQueue,
    next_id: &AtomicU64,
    errors: &AtomicU64,
) -> bool {
    if line.trim().is_empty() {
        return false;
    }
    match EvalRequest::parse(line) {
        Ok(ClientMessage::Shutdown) => true,
        Ok(ClientMessage::Eval(mut req)) => {
            if req.id.is_empty() {
                req.id = format!("req-{}", next_id.fetch_add(1, Ordering::Relaxed));
            }
            queue.push(Work {
                req,
                writer: writer.clone(),
            });
            false
        }
        Err(e) => {
            errors.fetch_add(1, Ordering::Relaxed);
            writer.emit(
                &EvalEvent::Response(EvalResponse::Error {
                    request: String::new(),
                    code: ErrorCode::BadRequest,
                    message: e.to_string(),
                })
                .to_json(),
            );
            false
        }
    }
}

/// Serves newline-delimited requests from `input`, streaming all events to
/// `output` (the stdin/stdout transport, also the test harness transport).
/// Returns after EOF or a shutdown sentinel, once queued requests drain.
pub fn serve_lines<R: BufRead>(
    input: R,
    output: Box<dyn Write + Send>,
    service: &dyn EvalService,
    opts: &ServeOptions,
) -> ServeReport {
    let writer = SharedWriter::new(output);
    let queue = RequestQueue::new();
    let requests = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let next_id = AtomicU64::new(0);

    crossbeam::thread::scope(|scope| {
        for _ in 0..opts.request_slots.max(1) {
            let (queue, requests, errors) = (&queue, &requests, &errors);
            scope.spawn(move |_| {
                while let Some(work) = queue.pop() {
                    requests.fetch_add(1, Ordering::Relaxed);
                    if !run_request(service, opts, work) {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
        for line in input.lines() {
            let Ok(line) = line else { break };
            if admit_line(&line, &writer, &queue, &next_id, &errors) {
                break;
            }
        }
        queue.close();
    })
    .expect("serve request slots panicked");

    ServeReport {
        requests: requests.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
    }
}

/// Serves requests on a Unix socket at `path` (created fresh; a stale
/// socket file is replaced). Each connection gets its own reader thread and
/// response writer; requests from all connections share the slot pool and
/// the store. Returns after a `{"shutdown":true}` sentinel from any client,
/// once open connections close and queued requests drain.
pub fn serve_unix(
    path: &Path,
    service: &dyn EvalService,
    opts: &ServeOptions,
) -> std::io::Result<ServeReport> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    listener.set_nonblocking(true)?;

    let queue = RequestQueue::new();
    let requests = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let next_id = AtomicU64::new(0);
    let shutdown = AtomicBool::new(false);
    let open_connections = AtomicU64::new(0);

    crossbeam::thread::scope(|scope| {
        for _ in 0..opts.request_slots.max(1) {
            let (queue, requests, errors) = (&queue, &requests, &errors);
            scope.spawn(move |_| {
                while let Some(work) = queue.pop() {
                    requests.fetch_add(1, Ordering::Relaxed);
                    if !run_request(service, opts, work) {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }

        while !shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    let Ok(write_half) = stream.try_clone() else {
                        continue;
                    };
                    let writer = SharedWriter::new(Box::new(write_half));
                    open_connections.fetch_add(1, Ordering::SeqCst);
                    let (queue, errors, next_id, shutdown, open_connections) =
                        (&queue, &errors, &next_id, &shutdown, &open_connections);
                    scope.spawn(move |_| {
                        for line in BufReader::new(stream).lines() {
                            let Ok(line) = line else { break };
                            if admit_line(&line, &writer, queue, next_id, errors) {
                                shutdown.store(true, Ordering::SeqCst);
                                break;
                            }
                        }
                        open_connections.fetch_sub(1, Ordering::SeqCst);
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(_) => break,
            }
        }
        // Stop accepting, let connected clients finish sending (they close
        // once their responses arrive), then close the queue so the slots
        // drain and exit.
        while open_connections.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(10));
        }
        queue.close();
    })
    .expect("serve request slots panicked");

    let _ = std::fs::remove_file(path);
    Ok(ServeReport {
        requests: requests.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
    })
}

// ---------------------------------------------------------------------------
// Client half (used by `suite request` and CI)
// ---------------------------------------------------------------------------

/// Everything a client got back for one request.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// Progress events in arrival order (excluding the terminal response).
    pub events: Vec<EvalEvent>,
    /// The terminal done/error response.
    pub response: EvalResponse,
    /// Report stdout reassembled from chunks in the response's
    /// `stdout_jobs` order — byte-identical to the one-shot binary's
    /// stdout for the same subgraph. Empty on error.
    pub stdout: String,
}

/// Connects to `path`, retrying until `timeout` elapses — covers the gap
/// between spawning the daemon and the socket appearing.
pub fn connect_unix(path: &Path, timeout: Duration) -> std::io::Result<UnixStream> {
    let deadline = Instant::now() + timeout;
    loop {
        match UnixStream::connect(path) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// Sends `req` over the socket at `path` and blocks until its terminal
/// response, calling `on_event` for each progress event as it streams in.
pub fn request_over_unix(
    path: &Path,
    req: &EvalRequest,
    timeout: Duration,
    mut on_event: impl FnMut(&EvalEvent),
) -> std::io::Result<RequestOutcome> {
    let mut stream = connect_unix(path, timeout)?;
    let reader = BufReader::new(stream.try_clone()?);
    writeln!(stream, "{}", req.to_json())?;

    let mut events = Vec::new();
    let mut chunks: HashMap<String, String> = HashMap::new();
    for line in reader.lines() {
        let line = line?;
        let Some(event) = EvalEvent::parse(&line) else {
            continue;
        };
        if event.request() != req.id {
            continue;
        }
        if let EvalEvent::Response(response) = event {
            let stdout = match &response {
                EvalResponse::Done { stdout_jobs, .. } => stdout_jobs
                    .iter()
                    .filter_map(|id| chunks.get(id).map(String::as_str))
                    .collect(),
                EvalResponse::Error { .. } => String::new(),
            };
            return Ok(RequestOutcome {
                events,
                response,
                stdout,
            });
        }
        if let EvalEvent::StdoutChunk { job, stdout, .. } = &event {
            chunks.insert(job.clone(), stdout.clone());
        }
        on_event(&event);
        events.push(event);
    }
    Err(std::io::Error::new(
        std::io::ErrorKind::UnexpectedEof,
        "server closed the connection before a terminal response",
    ))
}

/// Sends the shutdown sentinel to the daemon at `path`.
pub fn send_shutdown(path: &Path, timeout: Duration) -> std::io::Result<()> {
    let mut stream = connect_unix(path, timeout)?;
    writeln!(stream, "{}", EvalRequest::shutdown_json())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Priority;
    use crate::dag::{Job, JobOutcome};
    use std::io::Cursor;

    /// A capture buffer usable as the serve output.
    #[derive(Clone, Default)]
    struct Capture(Arc<Mutex<Vec<u8>>>);

    impl Capture {
        fn take_lines(&self) -> Vec<String> {
            let bytes = self.0.lock().expect("capture lock");
            String::from_utf8_lossy(&bytes)
                .lines()
                .map(str::to_string)
                .collect()
        }
    }

    impl Write for Capture {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("capture lock").extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    /// Builds `count` sleep jobs (one stdout job at the end) per request:
    /// `only=["sleep:N"]` → N jobs of ~15 ms each.
    struct ToyService;

    impl EvalService for ToyService {
        fn dag_for(&self, req: &EvalRequest) -> Result<Dag, (ErrorCode, String)> {
            let count: usize = match req.only.as_slice() {
                [spec] => spec
                    .strip_prefix("sleep:")
                    .and_then(|n| n.parse().ok())
                    .ok_or((ErrorCode::UnknownJob, format!("no job {:?}", spec)))?,
                _ => 1,
            };
            let jobs = (0..count)
                .map(|i| {
                    let job = Job::new(format!("step-{i}"), move || {
                        std::thread::sleep(Duration::from_millis(15));
                        JobOutcome {
                            stdout: format!("step-{i}\n"),
                            ..JobOutcome::default()
                        }
                    });
                    if i == count - 1 {
                        job.emits_stdout()
                    } else {
                        job
                    }
                })
                .collect();
            Dag::new(jobs).map_err(|e| (ErrorCode::BadRequest, e.to_string()))
        }
    }

    fn events_of(lines: &[String]) -> Vec<EvalEvent> {
        lines
            .iter()
            .filter_map(|line| EvalEvent::parse(line))
            .collect()
    }

    #[test]
    fn requests_stream_events_and_terminate_with_done() {
        let capture = Capture::default();
        let input = Cursor::new(format!(
            "{}\n",
            EvalRequest {
                id: "r1".into(),
                only: vec!["sleep:2".into()],
                ..EvalRequest::default()
            }
            .to_json()
        ));
        let report = serve_lines(
            input,
            Box::new(capture.clone()),
            &ToyService,
            &ServeOptions::default(),
        );
        assert_eq!(
            report,
            ServeReport {
                requests: 1,
                errors: 0
            }
        );

        let events = events_of(&capture.take_lines());
        assert!(matches!(
            events.first(),
            Some(EvalEvent::Accepted { jobs: 2, .. })
        ));
        assert!(events.iter().all(|e| e.request() == "r1"));
        let done = events
            .iter()
            .find_map(|e| match e {
                EvalEvent::Response(r @ EvalResponse::Done { .. }) => Some(r.clone()),
                _ => None,
            })
            .expect("terminal done");
        match done {
            EvalResponse::Done {
                jobs_run,
                stdout_jobs,
                ..
            } => {
                assert_eq!(jobs_run, 2);
                assert_eq!(stdout_jobs, vec!["step-1".to_string()]);
            }
            EvalResponse::Error { .. } => unreachable!(),
        }
        // The stdout chunk of the emitting job arrived before done.
        assert!(events.iter().any(|e| matches!(
            e,
            EvalEvent::StdoutChunk { job, stdout, .. } if job == "step-1" && stdout == "step-1\n"
        )));
    }

    #[test]
    fn malformed_lines_get_typed_errors_and_never_kill_the_daemon() {
        let capture = Capture::default();
        let hostile = [
            "garbage",
            "[1,2,3]",
            "{\"runs\":0}",
            "{\"only\":\"not-an-array\"}",
            &format!("{}1{}", "[".repeat(2000), "]".repeat(2000)),
            "{\"a\":\"\\u12\"}",
        ];
        // Hostile lines interleaved with one valid request: the valid one
        // still completes.
        let mut input = String::new();
        for line in hostile {
            input.push_str(line);
            input.push('\n');
        }
        input.push_str(&format!(
            "{}\n",
            EvalRequest {
                id: "survivor".into(),
                only: vec!["sleep:1".into()],
                ..EvalRequest::default()
            }
            .to_json()
        ));
        let report = serve_lines(
            Cursor::new(input),
            Box::new(capture.clone()),
            &ToyService,
            &ServeOptions::default(),
        );
        assert_eq!(report.requests, 1, "only the valid request was admitted");
        assert_eq!(report.errors as usize, hostile.len());

        let events = events_of(&capture.take_lines());
        let typed_errors = events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    EvalEvent::Response(EvalResponse::Error {
                        code: ErrorCode::BadRequest,
                        ..
                    })
                )
            })
            .count();
        assert_eq!(typed_errors, hostile.len(), "every hostile line answered");
        assert!(
            events.iter().any(|e| matches!(
                e,
                EvalEvent::Response(EvalResponse::Done { request, .. }) if request == "survivor"
            )),
            "the valid request completed after the hostile ones"
        );
    }

    #[test]
    fn unknown_job_is_a_typed_error_not_a_crash() {
        let capture = Capture::default();
        let input = Cursor::new(format!(
            "{}\n",
            EvalRequest {
                id: "r1".into(),
                only: vec!["sleep:NaN".into()],
                ..EvalRequest::default()
            }
            .to_json()
        ));
        let report = serve_lines(
            input,
            Box::new(capture.clone()),
            &ToyService,
            &ServeOptions::default(),
        );
        assert_eq!(
            report,
            ServeReport {
                requests: 1,
                errors: 1
            }
        );
        let events = events_of(&capture.take_lines());
        assert!(events.iter().any(|e| matches!(
            e,
            EvalEvent::Response(EvalResponse::Error {
                request,
                code: ErrorCode::UnknownJob,
                ..
            }) if request == "r1"
        )));
    }

    #[test]
    fn interactive_requests_jump_the_batch_queue() {
        // One slot, two batch requests queued ahead of a later interactive
        // one. Whichever request happens to grab the slot first, the
        // interactive request must complete before the batch request that
        // is still queued when it arrives — it jumps the batch class.
        let capture = Capture::default();
        let mk = |id: &str, steps: usize, priority: Priority| EvalRequest {
            id: id.into(),
            only: vec![format!("sleep:{steps}")],
            priority,
            ..EvalRequest::default()
        };
        let input = format!(
            "{}\n{}\n{}\n",
            mk("batch-1", 6, Priority::Batch).to_json(),
            mk("batch-2", 6, Priority::Batch).to_json(),
            mk("quick", 1, Priority::Interactive).to_json(),
        );
        let opts = ServeOptions {
            request_slots: 1,
            ..ServeOptions::default()
        };
        let report = serve_lines(
            Cursor::new(input),
            Box::new(capture.clone()),
            &ToyService,
            &opts,
        );
        assert_eq!(report.requests, 3);

        let lines = capture.take_lines();
        let done_order: Vec<String> = events_of(&lines)
            .into_iter()
            .filter_map(|e| match e {
                EvalEvent::Response(EvalResponse::Done { request, .. }) => Some(request),
                _ => None,
            })
            .collect();
        assert_eq!(done_order.len(), 3);
        let pos = |id: &str| done_order.iter().position(|r| r == id).unwrap();
        // At most one batch request can be running when "quick" arrives, so
        // "quick" finishes before at least one of them; FIFO within the
        // batch class means batch-1 never trails batch-2.
        assert!(
            pos("quick") < pos("batch-2"),
            "interactive jumped the queue: {done_order:?}"
        );
        assert!(
            pos("batch-1") < pos("batch-2"),
            "FIFO within the batch class"
        );
    }

    #[test]
    fn small_request_is_not_starved_by_a_large_one() {
        // Two slots: a large campaign in one, a small query right behind
        // it. The small one must complete while the large one is still
        // running — its Done line appears strictly before the large one's.
        let capture = Capture::default();
        let input = format!(
            "{}\n{}\n",
            EvalRequest {
                id: "large".into(),
                only: vec!["sleep:12".into()],
                ..EvalRequest::default()
            }
            .to_json(),
            EvalRequest {
                id: "small".into(),
                only: vec!["sleep:1".into()],
                ..EvalRequest::default()
            }
            .to_json(),
        );
        let report = serve_lines(
            Cursor::new(input),
            Box::new(capture.clone()),
            &ToyService,
            &ServeOptions::default(), // 2 slots
        );
        assert_eq!(
            report,
            ServeReport {
                requests: 2,
                errors: 0
            }
        );
        let done_order: Vec<String> = events_of(&capture.take_lines())
            .into_iter()
            .filter_map(|e| match e {
                EvalEvent::Response(EvalResponse::Done { request, .. }) => Some(request),
                _ => None,
            })
            .collect();
        assert_eq!(done_order, ["small", "large"]);
    }

    #[test]
    fn shutdown_sentinel_drains_queued_requests_before_returning() {
        let capture = Capture::default();
        let input = format!(
            "{}\n{}\n{}\nignored after shutdown\n",
            EvalRequest {
                id: "a".into(),
                only: vec!["sleep:2".into()],
                ..EvalRequest::default()
            }
            .to_json(),
            EvalRequest {
                id: "b".into(),
                only: vec!["sleep:2".into()],
                ..EvalRequest::default()
            }
            .to_json(),
            EvalRequest::shutdown_json(),
        );
        let opts = ServeOptions {
            request_slots: 1,
            ..ServeOptions::default()
        };
        let report = serve_lines(
            Cursor::new(input),
            Box::new(capture.clone()),
            &ToyService,
            &opts,
        );
        // Both pre-shutdown requests ran; the post-shutdown line was never
        // read (and caused no error).
        assert_eq!(
            report,
            ServeReport {
                requests: 2,
                errors: 0
            }
        );
        let done: Vec<String> = events_of(&capture.take_lines())
            .into_iter()
            .filter_map(|e| match e {
                EvalEvent::Response(EvalResponse::Done { request, .. }) => Some(request),
                _ => None,
            })
            .collect();
        assert_eq!(done, ["a", "b"]);
    }

    #[test]
    fn unix_socket_round_trip_with_concurrent_clients() {
        let dir = std::env::temp_dir().join(format!("serve-unix-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let socket = dir.join("suite.sock");

        crossbeam::thread::scope(|scope| {
            let server = scope.spawn({
                let socket = socket.clone();
                move |_| serve_unix(&socket, &ToyService, &ServeOptions::default())
            });

            let timeout = Duration::from_secs(10);
            let clients: Vec<_> = (0..2)
                .map(|i| {
                    let socket = socket.clone();
                    scope.spawn(move |_| {
                        let req = EvalRequest {
                            id: format!("client-{i}"),
                            only: vec!["sleep:3".into()],
                            ..EvalRequest::default()
                        };
                        request_over_unix(&socket, &req, timeout, |_| {})
                    })
                })
                .collect();
            for (i, client) in clients.into_iter().enumerate() {
                let outcome = client
                    .join()
                    .expect("client thread")
                    .expect("client outcome");
                assert!(
                    matches!(outcome.response, EvalResponse::Done { .. }),
                    "client {i}: {:?}",
                    outcome.response
                );
                assert_eq!(outcome.stdout, "step-2\n", "client {i} stdout");
            }

            send_shutdown(&socket, timeout).expect("shutdown");
            let report = server
                .join()
                .expect("server thread")
                .expect("server report");
            assert_eq!(
                report,
                ServeReport {
                    requests: 2,
                    errors: 0
                }
            );
        })
        .expect("socket test threads");

        assert!(!socket.exists(), "socket file removed on shutdown");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
