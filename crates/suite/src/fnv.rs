//! FNV-1a 64-bit — the digest behind every content address in the suite.
//!
//! The same algorithm (and constants) the oracle cache has used since it
//! was introduced, promoted to a public type so artifact keys, manifest
//! stdout digests and run-config digests all share one implementation.

/// Incremental FNV-1a 64-bit hasher.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Feeds raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Feeds a `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Feeds an `f64` by bit pattern (so `-0.0` ≠ `0.0` and NaNs are
    /// stable) — content addresses must reflect bit-exact inputs.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feeds a string's UTF-8 bytes.
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
    }

    /// The digest so far.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// One-shot digest of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Fnv1a::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
    }

    #[test]
    fn f64_uses_bit_pattern() {
        let mut a = Fnv1a::new();
        a.write_f64(0.0);
        let mut b = Fnv1a::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }
}
