//! The content-addressed artifact store.
//!
//! A generalization of the oracle cache's on-disk layout: byte blobs live
//! one-per-file under a root directory as `{key:016x}.{namespace}` (the
//! `oracle` namespace is therefore file-compatible with caches written
//! before the store existed). The store moves bytes only — encoding,
//! decoding and validation belong to the callers, which treat every file
//! as hostile.
//!
//! All I/O is best-effort: an unreadable file is a miss and a failed write
//! is silently skipped, so a read-only or full disk degrades to "recompute
//! everything" rather than an error.

use av_telemetry::{Telemetry, TraceEvent};
use std::path::{Path, PathBuf};

/// A persistent, namespaced, content-addressed store of byte blobs.
#[derive(Debug, Default)]
pub struct ArtifactStore {
    dir: Option<PathBuf>,
    telemetry: Telemetry,
}

impl ArtifactStore {
    /// A store that never hits and never writes (`--no-cache`).
    pub fn disabled() -> ArtifactStore {
        ArtifactStore {
            dir: None,
            telemetry: Telemetry::disabled(),
        }
    }

    /// A store rooted at `dir` (created lazily on first write).
    pub fn at(dir: impl Into<PathBuf>) -> ArtifactStore {
        ArtifactStore {
            dir: Some(dir.into()),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle; reads emit
    /// [`TraceEvent::ArtifactHit`] / [`TraceEvent::ArtifactMiss`].
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> ArtifactStore {
        self.telemetry = telemetry;
        self
    }

    /// Replaces the telemetry handle in place (for owners holding a
    /// not-yet-shared store).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Whether reads can ever hit.
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// The root directory, if enabled.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    fn path_for(dir: &Path, namespace: &str, key: u64) -> PathBuf {
        dir.join(format!("{key:016x}.{namespace}"))
    }

    /// Reads the blob stored under ⟨`namespace`, `key`⟩. Any I/O failure
    /// (including a disabled store) is a miss.
    pub fn get(&self, namespace: &'static str, key: u64) -> Option<Vec<u8>> {
        let found = self
            .dir
            .as_deref()
            .and_then(|dir| std::fs::read(Self::path_for(dir, namespace, key)).ok());
        match &found {
            Some(_) => self
                .telemetry
                .emit(0.0, || TraceEvent::ArtifactHit { namespace, key }),
            None => self
                .telemetry
                .emit(0.0, || TraceEvent::ArtifactMiss { namespace, key }),
        }
        found
    }

    /// Persists `bytes` under ⟨`namespace`, `key`⟩ (atomic tmp + rename;
    /// best-effort — failures are silently skipped).
    pub fn put(&self, namespace: &'static str, key: u64, bytes: &[u8]) {
        let Some(dir) = self.dir.as_deref() else {
            return;
        };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let tmp = dir.join(format!("{key:016x}.{namespace}.tmp.{}", std::process::id()));
        if std::fs::write(&tmp, bytes).is_ok()
            && std::fs::rename(&tmp, Self::path_for(dir, namespace, key)).is_err()
        {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_telemetry::{EventKind, RingBufferSink, SharedSink};

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("artifact-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_bytes_per_namespace() {
        let dir = scratch("roundtrip");
        let store = ArtifactStore::at(&dir);
        assert!(store.get("oracle", 7).is_none(), "cold store misses");
        store.put("oracle", 7, b"alpha");
        store.put("dataset", 7, b"beta");
        assert_eq!(store.get("oracle", 7).as_deref(), Some(&b"alpha"[..]));
        assert_eq!(store.get("dataset", 7).as_deref(), Some(&b"beta"[..]));
        assert!(store.get("oracle", 8).is_none(), "other keys stay cold");
        // Layout is file-compatible with the pre-store oracle cache.
        assert!(dir.join(format!("{:016x}.oracle", 7)).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_store_never_hits_or_writes() {
        let store = ArtifactStore::disabled();
        store.put("oracle", 1, b"ignored");
        assert!(store.get("oracle", 1).is_none());
        assert!(!store.is_enabled());
    }

    #[test]
    fn reads_emit_hit_and_miss_telemetry() {
        let dir = scratch("telemetry");
        let sink = SharedSink::new(RingBufferSink::new(16));
        let store = ArtifactStore::at(&dir).with_telemetry(Telemetry::with_sink(sink.clone()));
        let _ = store.get("dataset", 3);
        store.put("dataset", 3, b"x");
        let _ = store.get("dataset", 3);
        let kinds: Vec<EventKind> = sink
            .lock()
            .records()
            .iter()
            .map(|r| r.event.kind())
            .collect();
        assert_eq!(kinds, vec![EventKind::ArtifactMiss, EventKind::ArtifactHit]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
