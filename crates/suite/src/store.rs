//! The content-addressed artifact store.
//!
//! A generalization of the oracle cache's on-disk layout: byte blobs live
//! one-per-file under a root directory as `{key:016x}.{namespace}` (the
//! `oracle` namespace is therefore file-compatible with caches written
//! before the store existed). The store moves bytes only — encoding,
//! decoding and validation belong to the callers, which treat every file
//! as hostile.
//!
//! Reads distinguish "not there" from "there but unreadable": [`get`]
//! returns `Ok(None)` on a plain miss and a typed [`StoreError`] on real
//! I/O failure, so callers can log degradation instead of silently
//! recomputing. Writes stay best-effort (atomic tmp + rename, failures
//! skipped) so a read-only or full disk degrades to "recompute everything"
//! rather than an error.
//!
//! The store also carries the cross-request [`InFlight`] dedup registry:
//! concurrent computations of the same ⟨namespace, key⟩ coordinate through
//! [`ArtifactStore::claim`], which is what lets an evaluation daemon run
//! one training job for N identical requests.
//!
//! [`get`]: ArtifactStore::get

use crate::dedup::{Claim, InFlight};
use av_telemetry::{Telemetry, TraceEvent};
use std::path::{Path, PathBuf};

/// A store read that failed for a reason other than the blob being absent.
#[derive(Debug)]
pub struct StoreError {
    /// The file the read touched.
    pub path: PathBuf,
    /// The underlying I/O error.
    pub source: std::io::Error,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "artifact store read failed for {}: {}",
            self.path.display(),
            self.source
        )
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

/// A persistent, namespaced, content-addressed store of byte blobs.
#[derive(Debug, Default)]
pub struct ArtifactStore {
    dir: Option<PathBuf>,
    telemetry: Telemetry,
    inflight: InFlight,
}

impl ArtifactStore {
    /// A store that never hits and never writes (`--no-cache`).
    pub fn disabled() -> ArtifactStore {
        ArtifactStore {
            dir: None,
            telemetry: Telemetry::disabled(),
            inflight: InFlight::new(),
        }
    }

    /// A store rooted at `dir` (created lazily on first write).
    pub fn at(dir: impl Into<PathBuf>) -> ArtifactStore {
        ArtifactStore {
            dir: Some(dir.into()),
            telemetry: Telemetry::disabled(),
            inflight: InFlight::new(),
        }
    }

    /// Attaches a telemetry handle; reads emit
    /// [`TraceEvent::ArtifactHit`] / [`TraceEvent::ArtifactMiss`].
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> ArtifactStore {
        self.telemetry = telemetry;
        self
    }

    /// Replaces the telemetry handle in place (for owners holding a
    /// not-yet-shared store).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Whether reads can ever hit.
    pub fn is_enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// The root directory, if enabled.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    fn path_for(dir: &Path, namespace: &str, key: u64) -> PathBuf {
        dir.join(format!("{key:016x}.{namespace}"))
    }

    /// Reads the blob stored under ⟨`namespace`, `key`⟩. `Ok(None)` means
    /// the blob is absent (including on a disabled store); `Err` reports a
    /// real I/O failure — permissions, corruption, a vanished mount — that
    /// callers may treat as a miss but should surface.
    pub fn get(&self, namespace: &'static str, key: u64) -> Result<Option<Vec<u8>>, StoreError> {
        let Some(dir) = self.dir.as_deref() else {
            self.telemetry
                .emit(0.0, || TraceEvent::ArtifactMiss { namespace, key });
            return Ok(None);
        };
        let path = Self::path_for(dir, namespace, key);
        match std::fs::read(&path) {
            Ok(bytes) => {
                self.telemetry
                    .emit(0.0, || TraceEvent::ArtifactHit { namespace, key });
                Ok(Some(bytes))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.telemetry
                    .emit(0.0, || TraceEvent::ArtifactMiss { namespace, key });
                Ok(None)
            }
            Err(source) => {
                self.telemetry
                    .emit(0.0, || TraceEvent::ArtifactMiss { namespace, key });
                Err(StoreError { path, source })
            }
        }
    }

    /// Persists `bytes` under ⟨`namespace`, `key`⟩ (atomic tmp + rename;
    /// best-effort — failures are silently skipped).
    pub fn put(&self, namespace: &'static str, key: u64, bytes: &[u8]) {
        let Some(dir) = self.dir.as_deref() else {
            return;
        };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let tmp = dir.join(format!("{key:016x}.{namespace}.tmp.{}", std::process::id()));
        if std::fs::write(&tmp, bytes).is_ok()
            && std::fs::rename(&tmp, Self::path_for(dir, namespace, key)).is_err()
        {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Claims the in-flight computation of ⟨`namespace`, `key`⟩ — call
    /// after a [`get`] miss and before computing. On a disabled store the
    /// claim is [`Claim::Uncoordinated`]: followers could never read the
    /// leader's result back, so everyone computes locally.
    ///
    /// [`get`]: ArtifactStore::get
    pub fn claim(&self, namespace: &'static str, key: u64) -> Claim<'_> {
        if self.dir.is_none() {
            return Claim::Uncoordinated;
        }
        self.inflight.claim(namespace, key)
    }

    /// Store-wide dedup counters: ⟨computations led, computations
    /// coalesced onto another caller's in-flight work⟩.
    pub fn dedup_counters(&self) -> (u64, u64) {
        (self.inflight.led(), self.inflight.coalesced())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_telemetry::{EventKind, RingBufferSink, SharedSink};

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("artifact-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trips_bytes_per_namespace() {
        let dir = scratch("roundtrip");
        let store = ArtifactStore::at(&dir);
        assert_eq!(store.get("oracle", 7).expect("readable"), None);
        store.put("oracle", 7, b"alpha");
        store.put("dataset", 7, b"beta");
        assert_eq!(
            store.get("oracle", 7).expect("readable").as_deref(),
            Some(&b"alpha"[..])
        );
        assert_eq!(
            store.get("dataset", 7).expect("readable").as_deref(),
            Some(&b"beta"[..])
        );
        assert_eq!(
            store.get("oracle", 8).expect("readable"),
            None,
            "other keys stay cold"
        );
        // Layout is file-compatible with the pre-store oracle cache.
        assert!(dir.join(format!("{:016x}.oracle", 7)).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_store_never_hits_or_writes() {
        let store = ArtifactStore::disabled();
        store.put("oracle", 1, b"ignored");
        assert_eq!(store.get("oracle", 1).expect("absent, not an error"), None);
        assert!(!store.is_enabled());
        // No persistence → no coordination: claims never block.
        assert!(matches!(store.claim("oracle", 1), Claim::Uncoordinated));
        assert_eq!(store.dedup_counters(), (0, 0));
    }

    #[test]
    fn io_failure_is_a_typed_error_not_a_silent_miss() {
        let dir = scratch("io-error");
        let store = ArtifactStore::at(&dir);
        store.put("oracle", 9, b"payload");
        // Replace the blob with a directory: reading it now fails with a
        // real I/O error, not NotFound.
        let path = dir.join(format!("{:016x}.oracle", 9));
        std::fs::remove_file(&path).expect("remove blob");
        std::fs::create_dir_all(&path).expect("shadow dir");
        let err = store.get("oracle", 9).expect_err("typed I/O error");
        assert_eq!(err.path, path);
        assert!(err.to_string().contains("artifact store read failed"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reads_emit_hit_and_miss_telemetry() {
        let dir = scratch("telemetry");
        let sink = SharedSink::new(RingBufferSink::new(16));
        let store = ArtifactStore::at(&dir).with_telemetry(Telemetry::with_sink(sink.clone()));
        let _ = store.get("dataset", 3);
        store.put("dataset", 3, b"x");
        let _ = store.get("dataset", 3);
        let kinds: Vec<EventKind> = sink
            .lock()
            .records()
            .iter()
            .map(|r| r.event.kind())
            .collect();
        assert_eq!(kinds, vec![EventKind::ArtifactMiss, EventKind::ArtifactHit]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn enabled_store_coordinates_claims() {
        let dir = scratch("claims");
        let store = ArtifactStore::at(&dir);
        let token = match store.claim("oracle", 5) {
            Claim::Leader(t) => t,
            other => panic!("expected leader, got {other:?}"),
        };
        store.put("oracle", 5, b"trained");
        drop(token);
        assert_eq!(store.dedup_counters(), (1, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
