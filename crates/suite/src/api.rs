//! The typed evaluation-service wire API.
//!
//! One request type drives everything: the one-shot `suite` CLI parses its
//! flags into an [`EvalRequest`], and `suite serve` parses the same type off
//! newline-delimited JSON — both then execute the identical request through
//! [`crate::exec::execute`]. Responses stream back as one JSON object per
//! line ([`EvalEvent`]), terminated by exactly one [`EvalResponse`] per
//! request, mirroring the JSONL manifest format.
//!
//! Serde is vendored as a no-op stub in this workspace, so the codec is
//! hand-rolled like `manifest.rs`: writers emit fields in a fixed order,
//! and the reader is a small recursive-descent JSON parser hardened against
//! hostile input (depth-limited, bounds-checked, never panics) because the
//! daemon feeds it bytes from arbitrary clients.

use std::fmt;

/// Maximum nesting depth the request parser will follow. Requests are flat
/// objects; anything deeper is an attack or a bug, and recursing into it
/// would let a hostile client overflow the daemon's stack.
const MAX_DEPTH: usize = 32;
/// Upper bounds on request fields — admission control starts at the parser.
const MAX_ID_LEN: usize = 128;
const MAX_TARGETS: usize = 64;
const MAX_JOBS: usize = 512;

// ---------------------------------------------------------------------------
// A minimal hostile-input-safe JSON value
// ---------------------------------------------------------------------------

/// A parsed JSON value. Objects keep insertion order; duplicate keys keep
/// the last occurrence (looked up via reverse scan), matching common JSON
/// semantics.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always finite; the parser rejects the rest).
    Num(f64),
    /// A string, with escapes resolved.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ⟨key, value⟩ pairs in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON document. Trailing garbage, unterminated
    /// strings, bad escapes, and nesting beyond the depth bound are all
    /// errors — never panics, whatever the input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup (last occurrence wins); `None` for non-objects.
    pub fn get(&self, field: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries
                .iter()
                .rev()
                .find(|(k, _)| k == field)
                .map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, for [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, for [`Json::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric field as an exact non-negative integer. Fractional,
    /// negative, NaN, or > 2^53 values are rejected rather than rounded.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9007199254740992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The items, for [`Json::Arr`].
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                char::from(byte),
                self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!(
                "unexpected '{}' at byte {}",
                char::from(c),
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogates map to the replacement character
                            // rather than erroring: the daemon must accept
                            // any line a hostile client sends without dying.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one complete UTF-8 scalar (input is &str, so
                    // boundaries are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        let n: f64 = text
            .parse()
            .map_err(|_| format!("bad number '{text}' at byte {start}"))?;
        if n.is_finite() {
            Ok(Json::Num(n))
        } else {
            Err(format!("non-finite number '{text}' at byte {start}"))
        }
    }
}

/// Escapes a string for embedding in a JSON document (same dialect as the
/// manifest writer).
pub fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// Scheduling class for admission control: `Interactive` requests are
/// admitted before any queued `Batch` request, FIFO within each class, so a
/// 2000-run campaign can't starve a quick `--only fig5` query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Admitted before any queued batch request.
    Interactive,
    /// Yields to queued interactive requests.
    Batch,
}

impl Priority {
    /// The wire name (`"interactive"` / `"batch"`).
    pub fn name(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Batch => "batch",
        }
    }

    /// Parses a wire name back into a priority.
    pub fn parse(name: &str) -> Option<Priority> {
        match name {
            "interactive" => Some(Priority::Interactive),
            "batch" => Some(Priority::Batch),
            _ => None,
        }
    }
}

/// One evaluation request — the unit both the CLI and the daemon execute.
///
/// Field ↔ CLI-flag correspondence: `only` ↔ `--only`, `runs` ↔ `--runs`,
/// `quick` ↔ `--quick`, `seed` ↔ `--seed`, `batch` ↔ `--batch`,
/// `jobs` ↔ `--jobs`, `priority` ↔ `--priority`.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRequest {
    /// Client-chosen correlation id echoed on every event; the daemon
    /// assigns `req-N` when empty.
    pub id: String,
    /// Target job ids (with their transitive deps); empty = the full DAG.
    pub only: Vec<String>,
    /// Campaign runs per arm.
    pub runs: u64,
    /// Quick sweep (reduced δ/k grid).
    pub quick: bool,
    /// Base RNG seed.
    pub seed: u64,
    /// Lockstep batched dispatch with this batch size; `None` = sequential
    /// work-stealing.
    pub batch: Option<usize>,
    /// DAG executor workers for this request (capped by the daemon).
    pub jobs: usize,
    /// Admission class.
    pub priority: Priority,
}

impl Default for EvalRequest {
    fn default() -> EvalRequest {
        EvalRequest {
            id: String::new(),
            only: Vec::new(),
            runs: 120,
            quick: false,
            seed: 2020,
            batch: None,
            jobs: 2,
            priority: Priority::Interactive,
        }
    }
}

/// One parsed client line: either an evaluation request or the shutdown
/// sentinel `{"shutdown": true}`.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientMessage {
    /// An evaluation request to admit.
    Eval(EvalRequest),
    /// Stop admitting, drain, and exit.
    Shutdown,
}

/// Why a client line was rejected. Every variant maps to a typed
/// [`EvalResponse::Error`]; none of them ever kills the daemon.
#[derive(Debug, Clone, PartialEq)]
pub enum ApiError {
    /// The line is not valid JSON.
    Syntax(String),
    /// The line parsed but is not a JSON object.
    NotAnObject,
    /// A field is present with the wrong type or an out-of-range value.
    BadField {
        /// The offending field name.
        field: &'static str,
        /// What the field must be.
        expected: &'static str,
    },
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::Syntax(detail) => write!(f, "invalid JSON: {detail}"),
            ApiError::NotAnObject => write!(f, "request must be a JSON object"),
            ApiError::BadField { field, expected } => {
                write!(f, "field '{field}' must be {expected}")
            }
        }
    }
}

impl std::error::Error for ApiError {}

impl EvalRequest {
    /// Parses one request line. Unknown fields are ignored (forward
    /// compatibility); known fields with wrong types are hard errors so a
    /// typo'd request fails loudly instead of silently running defaults.
    pub fn parse(line: &str) -> Result<ClientMessage, ApiError> {
        let value = Json::parse(line).map_err(ApiError::Syntax)?;
        if !matches!(value, Json::Obj(_)) {
            return Err(ApiError::NotAnObject);
        }
        if let Some(flag) = value.get("shutdown") {
            return match flag.as_bool() {
                Some(true) => Ok(ClientMessage::Shutdown),
                _ => Err(ApiError::BadField {
                    field: "shutdown",
                    expected: "true",
                }),
            };
        }

        let mut req = EvalRequest::default();
        if let Some(v) = value.get("request") {
            let id = v.as_str().ok_or(ApiError::BadField {
                field: "request",
                expected: "a string",
            })?;
            if id.len() > MAX_ID_LEN {
                return Err(ApiError::BadField {
                    field: "request",
                    expected: "at most 128 bytes",
                });
            }
            req.id = id.to_string();
        }
        if let Some(v) = value.get("only") {
            let items = v.as_arr().ok_or(ApiError::BadField {
                field: "only",
                expected: "an array of job ids",
            })?;
            if items.len() > MAX_TARGETS {
                return Err(ApiError::BadField {
                    field: "only",
                    expected: "at most 64 job ids",
                });
            }
            for item in items {
                let id = item.as_str().ok_or(ApiError::BadField {
                    field: "only",
                    expected: "an array of job ids",
                })?;
                req.only.push(id.to_string());
            }
        }
        if let Some(v) = value.get("runs") {
            req.runs = v.as_u64().filter(|&n| n >= 1).ok_or(ApiError::BadField {
                field: "runs",
                expected: "a positive integer",
            })?;
        }
        if let Some(v) = value.get("quick") {
            req.quick = v.as_bool().ok_or(ApiError::BadField {
                field: "quick",
                expected: "a boolean",
            })?;
        }
        if let Some(v) = value.get("seed") {
            req.seed = v.as_u64().ok_or(ApiError::BadField {
                field: "seed",
                expected: "a non-negative integer",
            })?;
        }
        if let Some(v) = value.get("batch") {
            if !matches!(v, Json::Null) {
                let n = v.as_u64().filter(|&n| n >= 1).ok_or(ApiError::BadField {
                    field: "batch",
                    expected: "a positive integer or null",
                })?;
                req.batch = Some(n as usize);
            }
        }
        if let Some(v) = value.get("jobs") {
            let n = v
                .as_u64()
                .filter(|&n| (1..=MAX_JOBS as u64).contains(&n))
                .ok_or(ApiError::BadField {
                    field: "jobs",
                    expected: "an integer in 1..=512",
                })?;
            req.jobs = n as usize;
        }
        if let Some(v) = value.get("priority") {
            let name = v.as_str().and_then(Priority::parse);
            req.priority = name.ok_or(ApiError::BadField {
                field: "priority",
                expected: "\"interactive\" or \"batch\"",
            })?;
        }
        Ok(ClientMessage::Eval(req))
    }

    /// Serializes the request as one wire line (what `suite request` sends).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"request\":\"{}\"", json_escape(&self.id)));
        if !self.only.is_empty() {
            let ids: Vec<String> = self
                .only
                .iter()
                .map(|id| format!("\"{}\"", json_escape(id)))
                .collect();
            out.push_str(&format!(",\"only\":[{}]", ids.join(",")));
        }
        out.push_str(&format!(
            ",\"runs\":{},\"quick\":{},\"seed\":{}",
            self.runs, self.quick, self.seed
        ));
        if let Some(batch) = self.batch {
            out.push_str(&format!(",\"batch\":{batch}"));
        }
        out.push_str(&format!(
            ",\"jobs\":{},\"priority\":\"{}\"",
            self.jobs,
            self.priority.name()
        ));
        out.push('}');
        out
    }

    /// The shutdown sentinel line.
    pub fn shutdown_json() -> &'static str {
        "{\"shutdown\":true}"
    }
}

// ---------------------------------------------------------------------------
// Events and responses
// ---------------------------------------------------------------------------

/// Machine-readable failure class carried by [`EvalResponse::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line failed to parse or validate.
    BadRequest,
    /// `only` named a job id the DAG doesn't have.
    UnknownJob,
    /// The executor itself failed (e.g. a job panicked).
    ExecFailed,
}

impl ErrorCode {
    /// The wire name (`"bad_request"` etc.).
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::UnknownJob => "unknown_job",
            ErrorCode::ExecFailed => "exec_failed",
        }
    }

    /// Parses a wire name back into a code.
    pub fn parse(name: &str) -> Option<ErrorCode> {
        match name {
            "bad_request" => Some(ErrorCode::BadRequest),
            "unknown_job" => Some(ErrorCode::UnknownJob),
            "exec_failed" => Some(ErrorCode::ExecFailed),
            _ => None,
        }
    }
}

/// One streamed line of a request's response. Progress events mirror the
/// JSONL manifest schema (job id, wall time, artifact counters); the stream
/// for a request always ends with exactly one [`EvalEvent::Response`].
#[derive(Debug, Clone, PartialEq)]
pub enum EvalEvent {
    /// The request was admitted and its subgraph validated.
    Accepted {
        /// The request id.
        request: String,
        /// Jobs in the validated subgraph.
        jobs: usize,
    },
    /// A job of this request started executing.
    JobStarted {
        /// The request id.
        request: String,
        /// The job id.
        job: String,
    },
    /// A job finished (or was recovered from a manifest, `skipped: true`).
    JobFinished {
        /// The request id.
        request: String,
        /// The job id.
        job: String,
        /// Wall time of the job.
        wall_ms: u64,
        /// Artifact-store hits while the job ran.
        hits: u64,
        /// Artifact-store misses while the job ran.
        misses: u64,
        /// Whether the job was recovered from a manifest instead of run.
        skipped: bool,
    },
    /// A report job's stdout, delivered as it completes.
    StdoutChunk {
        /// The request id.
        request: String,
        /// The job id.
        job: String,
        /// The job's full stdout contribution.
        stdout: String,
    },
    /// The terminal line for the request.
    Response(EvalResponse),
}

/// Terminal outcome of a request.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalResponse {
    /// The request's subgraph executed to completion.
    Done {
        /// The request id.
        request: String,
        /// Jobs that executed this run.
        jobs_run: u64,
        /// Jobs recovered from a manifest.
        jobs_skipped: u64,
        /// Artifact-store hits summed over executed jobs.
        artifact_hits: u64,
        /// Artifact-store misses summed over executed jobs.
        artifact_misses: u64,
        /// Store-wide computations led at completion time (see
        /// [`crate::dedup::InFlight::led`]).
        dedup_led: u64,
        /// Store-wide computations coalesced onto another request's
        /// in-flight work at completion time.
        dedup_coalesced: u64,
        /// Ids of stdout-emitting jobs in DAG (deterministic) order; clients
        /// reassemble chunks in this order to reproduce one-shot stdout.
        stdout_jobs: Vec<String>,
        /// Wall time of the whole request.
        wall_ms: u64,
    },
    /// The request failed; nothing further will stream.
    Error {
        /// The request id (empty for unparseable lines).
        request: String,
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl EvalResponse {
    /// The request id this response terminates.
    pub fn request(&self) -> &str {
        match self {
            EvalResponse::Done { request, .. } | EvalResponse::Error { request, .. } => request,
        }
    }
}

impl EvalEvent {
    /// The request id this event belongs to.
    pub fn request(&self) -> &str {
        match self {
            EvalEvent::Accepted { request, .. }
            | EvalEvent::JobStarted { request, .. }
            | EvalEvent::JobFinished { request, .. }
            | EvalEvent::StdoutChunk { request, .. } => request,
            EvalEvent::Response(resp) => resp.request(),
        }
    }

    /// Serializes the event as one wire line.
    pub fn to_json(&self) -> String {
        match self {
            EvalEvent::Accepted { request, jobs } => format!(
                "{{\"event\":\"accepted\",\"request\":\"{}\",\"jobs\":{jobs}}}",
                json_escape(request)
            ),
            EvalEvent::JobStarted { request, job } => format!(
                "{{\"event\":\"job_started\",\"request\":\"{}\",\"job\":\"{}\"}}",
                json_escape(request),
                json_escape(job)
            ),
            EvalEvent::JobFinished {
                request,
                job,
                wall_ms,
                hits,
                misses,
                skipped,
            } => format!(
                "{{\"event\":\"job_finished\",\"request\":\"{}\",\"job\":\"{}\",\
                 \"wall_ms\":{wall_ms},\"artifact_hits\":{hits},\"artifact_misses\":{misses},\
                 \"skipped\":{skipped}}}",
                json_escape(request),
                json_escape(job)
            ),
            EvalEvent::StdoutChunk {
                request,
                job,
                stdout,
            } => format!(
                "{{\"event\":\"stdout_chunk\",\"request\":\"{}\",\"job\":\"{}\",\"stdout\":\"{}\"}}",
                json_escape(request),
                json_escape(job),
                json_escape(stdout)
            ),
            EvalEvent::Response(EvalResponse::Done {
                request,
                jobs_run,
                jobs_skipped,
                artifact_hits,
                artifact_misses,
                dedup_led,
                dedup_coalesced,
                stdout_jobs,
                wall_ms,
            }) => {
                let ids: Vec<String> = stdout_jobs
                    .iter()
                    .map(|id| format!("\"{}\"", json_escape(id)))
                    .collect();
                format!(
                    "{{\"event\":\"done\",\"request\":\"{}\",\"jobs_run\":{jobs_run},\
                     \"jobs_skipped\":{jobs_skipped},\"artifact_hits\":{artifact_hits},\
                     \"artifact_misses\":{artifact_misses},\"dedup_led\":{dedup_led},\
                     \"dedup_coalesced\":{dedup_coalesced},\"stdout_jobs\":[{}],\
                     \"wall_ms\":{wall_ms}}}",
                    json_escape(request),
                    ids.join(",")
                )
            }
            EvalEvent::Response(EvalResponse::Error {
                request,
                code,
                message,
            }) => format!(
                "{{\"event\":\"error\",\"request\":\"{}\",\"code\":\"{}\",\"message\":\"{}\"}}",
                json_escape(request),
                code.name(),
                json_escape(message)
            ),
        }
    }

    /// Parses one wire line back into an event (the client half of the
    /// codec). Lines that are not events yield `None`.
    pub fn parse(line: &str) -> Option<EvalEvent> {
        let value = Json::parse(line).ok()?;
        let request = value.get("request")?.as_str()?.to_string();
        match value.get("event")?.as_str()? {
            "accepted" => Some(EvalEvent::Accepted {
                request,
                jobs: value.get("jobs")?.as_u64()? as usize,
            }),
            "job_started" => Some(EvalEvent::JobStarted {
                request,
                job: value.get("job")?.as_str()?.to_string(),
            }),
            "job_finished" => Some(EvalEvent::JobFinished {
                request,
                job: value.get("job")?.as_str()?.to_string(),
                wall_ms: value.get("wall_ms")?.as_u64()?,
                hits: value.get("artifact_hits")?.as_u64()?,
                misses: value.get("artifact_misses")?.as_u64()?,
                skipped: value.get("skipped")?.as_bool()?,
            }),
            "stdout_chunk" => Some(EvalEvent::StdoutChunk {
                request,
                job: value.get("job")?.as_str()?.to_string(),
                stdout: value.get("stdout")?.as_str()?.to_string(),
            }),
            "done" => Some(EvalEvent::Response(EvalResponse::Done {
                request,
                jobs_run: value.get("jobs_run")?.as_u64()?,
                jobs_skipped: value.get("jobs_skipped")?.as_u64()?,
                artifact_hits: value.get("artifact_hits")?.as_u64()?,
                artifact_misses: value.get("artifact_misses")?.as_u64()?,
                dedup_led: value.get("dedup_led")?.as_u64()?,
                dedup_coalesced: value.get("dedup_coalesced")?.as_u64()?,
                stdout_jobs: value
                    .get("stdout_jobs")?
                    .as_arr()?
                    .iter()
                    .map(|v| v.as_str().map(str::to_string))
                    .collect::<Option<Vec<String>>>()?,
                wall_ms: value.get("wall_ms")?.as_u64()?,
            })),
            "error" => Some(EvalEvent::Response(EvalResponse::Error {
                request,
                code: ErrorCode::parse(value.get("code")?.as_str()?)?,
                message: value.get("message")?.as_str()?.to_string(),
            })),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips_through_the_wire_format() {
        let req = EvalRequest {
            id: "camp-1".to_string(),
            only: vec!["table2".to_string(), "fig5".to_string()],
            runs: 2,
            quick: true,
            seed: 7,
            batch: Some(16),
            jobs: 4,
            priority: Priority::Batch,
        };
        let line = req.to_json();
        match EvalRequest::parse(&line).expect("round trip") {
            ClientMessage::Eval(parsed) => assert_eq!(parsed, req),
            other => panic!("expected eval, got {other:?}"),
        }
    }

    #[test]
    fn defaults_match_the_cli_defaults() {
        let msg = EvalRequest::parse("{}").expect("empty object is a default request");
        match msg {
            ClientMessage::Eval(req) => {
                assert_eq!(req, EvalRequest::default());
                assert_eq!(req.runs, 120);
                assert_eq!(req.seed, 2020);
                assert_eq!(req.jobs, 2);
                assert_eq!(req.priority, Priority::Interactive);
            }
            other => panic!("expected eval, got {other:?}"),
        }
    }

    #[test]
    fn shutdown_sentinel_parses() {
        assert_eq!(
            EvalRequest::parse(EvalRequest::shutdown_json()).expect("shutdown"),
            ClientMessage::Shutdown
        );
    }

    #[test]
    fn unknown_fields_are_ignored_known_fields_are_validated() {
        match EvalRequest::parse("{\"future_field\":42,\"runs\":3}").expect("forward compat") {
            ClientMessage::Eval(req) => assert_eq!(req.runs, 3),
            other => panic!("expected eval, got {other:?}"),
        }
        for bad in [
            "{\"runs\":0}",
            "{\"runs\":-1}",
            "{\"runs\":1.5}",
            "{\"runs\":\"many\"}",
            "{\"jobs\":0}",
            "{\"jobs\":4096}",
            "{\"only\":\"table2\"}",
            "{\"only\":[1,2]}",
            "{\"priority\":\"urgent\"}",
            "{\"quick\":\"yes\"}",
            "{\"shutdown\":false}",
        ] {
            assert!(
                matches!(EvalRequest::parse(bad), Err(ApiError::BadField { .. })),
                "{bad} should be a BadField error"
            );
        }
    }

    #[test]
    fn hostile_lines_error_instead_of_panicking() {
        let deep = format!("{}1{}", "[".repeat(4096), "]".repeat(4096));
        let cases = [
            "",
            "not json at all",
            "[1,2,3]",
            "\"just a string\"",
            "{\"runs\":1e309}",
            "{\"a\":\"\\u12\"}",
            "{\"a\":\"unterminated",
            "{\"a\":1,}",
            "{unquoted:1}",
            "{} trailing",
            "{\"a\":NaN}",
            deep.as_str(),
        ];
        for line in cases {
            let result = EvalRequest::parse(line);
            assert!(result.is_err(), "{line:.40} should be rejected: {result:?}");
        }
        // Non-object JSON gets the dedicated error.
        assert_eq!(EvalRequest::parse("[1,2,3]"), Err(ApiError::NotAnObject));
    }

    #[test]
    fn escaped_strings_survive_both_directions() {
        let req = EvalRequest {
            id: "weird\"id\\with\nnewline\ttab".to_string(),
            ..EvalRequest::default()
        };
        let line = req.to_json();
        assert!(!line.contains('\n'), "wire lines never embed raw newlines");
        match EvalRequest::parse(&line).expect("escapes round trip") {
            ClientMessage::Eval(parsed) => assert_eq!(parsed.id, req.id),
            other => panic!("expected eval, got {other:?}"),
        }
    }

    #[test]
    fn events_round_trip_through_the_wire_format() {
        let events = vec![
            EvalEvent::Accepted {
                request: "r1".to_string(),
                jobs: 13,
            },
            EvalEvent::JobStarted {
                request: "r1".to_string(),
                job: "oracle:DS-1:loc".to_string(),
            },
            EvalEvent::JobFinished {
                request: "r1".to_string(),
                job: "oracle:DS-1:loc".to_string(),
                wall_ms: 412,
                hits: 1,
                misses: 0,
                skipped: false,
            },
            EvalEvent::StdoutChunk {
                request: "r1".to_string(),
                job: "table2".to_string(),
                stdout: "Table II\nline \"two\"\n".to_string(),
            },
            EvalEvent::Response(EvalResponse::Done {
                request: "r1".to_string(),
                jobs_run: 13,
                jobs_skipped: 0,
                artifact_hits: 6,
                artifact_misses: 12,
                dedup_led: 12,
                dedup_coalesced: 5,
                stdout_jobs: vec!["table2".to_string()],
                wall_ms: 9000,
            }),
            EvalEvent::Response(EvalResponse::Error {
                request: "r2".to_string(),
                code: ErrorCode::UnknownJob,
                message: "unknown target job 'fig99'".to_string(),
            }),
        ];
        for event in events {
            let line = event.to_json();
            assert!(!line.contains('\n'), "one event per line: {line}");
            assert_eq!(EvalEvent::parse(&line), Some(event.clone()), "{line}");
        }
    }

    #[test]
    fn json_parser_handles_edge_values() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(
            Json::parse("{\"a\":{\"b\":[1,true,\"x\"]}}")
                .unwrap()
                .get("a")
                .and_then(|a| a.get("b"))
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(3)
        );
        // Duplicate keys: last wins.
        assert_eq!(
            Json::parse("{\"a\":1,\"a\":2}")
                .unwrap()
                .get("a")
                .and_then(Json::as_u64),
            Some(2)
        );
        // Exactly at the depth limit parses; one past it fails.
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&ok).is_ok());
        let too_deep = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(Json::parse(&too_deep).is_err());
    }
}
