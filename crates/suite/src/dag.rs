//! Typed jobs and the validated dependency DAG.
//!
//! A [`Job`] couples an identifier, declared dependency edges, declared
//! inputs/outputs (documentation surfaced by `--list`) and a `run` closure
//! producing a [`JobOutcome`]. [`Dag::new`] rejects duplicate ids, dangling
//! dependencies and cycles at construction, so the executor can assume a
//! well-formed schedule.

use std::collections::HashMap;
use std::sync::Arc;

/// What one job execution produced.
#[derive(Debug, Clone, Default)]
pub struct JobOutcome {
    /// The job's stdout contribution — byte-identical to what the job's
    /// standalone binary prints.
    pub stdout: String,
    /// Artifact-store lookups that hit while this job ran.
    pub artifact_hits: u64,
    /// Artifact-store lookups that missed while this job ran.
    pub artifact_misses: u64,
    /// Content digests of artifacts this job produced or pinned, as
    /// ⟨name, digest⟩ pairs — recorded in the run manifest.
    pub artifacts: Vec<(String, u64)>,
}

/// One schedulable unit of the evaluation suite.
///
/// Cloning a job is cheap: the `run` closure is shared behind an [`Arc`],
/// which is what lets one canonical [`Dag`] serve every daemon request via
/// [`Dag::subgraph`] without rebuilding closures.
#[derive(Clone)]
pub struct Job {
    id: String,
    deps: Vec<String>,
    inputs: Vec<String>,
    outputs: Vec<String>,
    emits_stdout: bool,
    run: Arc<dyn Fn() -> JobOutcome + Send + Sync>,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("id", &self.id)
            .field("deps", &self.deps)
            .field("emits_stdout", &self.emits_stdout)
            .finish_non_exhaustive()
    }
}

impl Job {
    /// A job named `id` running `run`, initially with no edges.
    pub fn new(id: impl Into<String>, run: impl Fn() -> JobOutcome + Send + Sync + 'static) -> Job {
        Job {
            id: id.into(),
            deps: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            emits_stdout: false,
            run: Arc::new(run),
        }
    }

    /// Adds a dependency edge: this job runs only after `dep` completed.
    #[must_use]
    pub fn dep(mut self, dep: impl Into<String>) -> Job {
        self.deps.push(dep.into());
        self
    }

    /// Adds dependency edges on every id in `deps`.
    #[must_use]
    pub fn deps<I: IntoIterator<Item = S>, S: Into<String>>(mut self, deps: I) -> Job {
        self.deps.extend(deps.into_iter().map(Into::into));
        self
    }

    /// Declares an input (documentation; shown by `--list`).
    #[must_use]
    pub fn input(mut self, input: impl Into<String>) -> Job {
        self.inputs.push(input.into());
        self
    }

    /// Declares an output (documentation; shown by `--list`).
    #[must_use]
    pub fn output(mut self, output: impl Into<String>) -> Job {
        self.outputs.push(output.into());
        self
    }

    /// Marks this job as contributing to the suite's stdout (paper
    /// artifacts do; dataset/oracle preparation jobs don't).
    #[must_use]
    pub fn emits_stdout(mut self) -> Job {
        self.emits_stdout = true;
        self
    }

    /// The job's identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Dependency ids.
    pub fn dep_ids(&self) -> &[String] {
        &self.deps
    }

    /// Declared inputs.
    pub fn declared_inputs(&self) -> &[String] {
        &self.inputs
    }

    /// Declared outputs.
    pub fn declared_outputs(&self) -> &[String] {
        &self.outputs
    }

    /// Whether this job contributes to suite stdout.
    pub fn is_stdout_job(&self) -> bool {
        self.emits_stdout
    }

    /// Executes the job's closure.
    pub fn execute(&self) -> JobOutcome {
        (self.run)()
    }
}

/// Why a [`Dag`] could not be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// Two jobs share an id.
    DuplicateId(String),
    /// A job depends on an id that no job has.
    UnknownDep {
        /// The depending job.
        job: String,
        /// The missing dependency id.
        dep: String,
    },
    /// The dependency graph has a cycle through this job.
    Cycle(String),
    /// `--only` named a job that does not exist.
    UnknownTarget(String),
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::DuplicateId(id) => write!(f, "duplicate job id {id:?}"),
            DagError::UnknownDep { job, dep } => {
                write!(f, "job {job:?} depends on unknown job {dep:?}")
            }
            DagError::Cycle(id) => write!(f, "dependency cycle through job {id:?}"),
            DagError::UnknownTarget(id) => write!(f, "no job named {id:?}"),
        }
    }
}

impl std::error::Error for DagError {}

/// A validated job DAG. Job order is declaration order; stdout-emitting
/// jobs print in that order regardless of execution interleaving.
#[derive(Debug, Clone)]
pub struct Dag {
    jobs: Vec<Job>,
    index: HashMap<String, usize>,
}

impl Dag {
    /// Validates `jobs` into a DAG (unique ids, resolvable deps, acyclic).
    pub fn new(jobs: Vec<Job>) -> Result<Dag, DagError> {
        let mut index = HashMap::with_capacity(jobs.len());
        for (i, job) in jobs.iter().enumerate() {
            if index.insert(job.id.clone(), i).is_some() {
                return Err(DagError::DuplicateId(job.id.clone()));
            }
        }
        for job in &jobs {
            for dep in &job.deps {
                if !index.contains_key(dep) {
                    return Err(DagError::UnknownDep {
                        job: job.id.clone(),
                        dep: dep.clone(),
                    });
                }
            }
        }
        let dag = Dag { jobs, index };
        dag.check_acyclic()?;
        Ok(dag)
    }

    /// Kahn's algorithm: if not every job can be scheduled, some job sits
    /// on a cycle — report one of them.
    fn check_acyclic(&self) -> Result<(), DagError> {
        let mut remaining: Vec<usize> = self.jobs.iter().map(|j| j.deps.len()).collect();
        let dependents = self.dependents();
        let mut ready: Vec<usize> = (0..self.jobs.len())
            .filter(|&i| remaining[i] == 0)
            .collect();
        let mut scheduled = 0;
        while let Some(i) = ready.pop() {
            scheduled += 1;
            for &d in &dependents[i] {
                remaining[d] -= 1;
                if remaining[d] == 0 {
                    ready.push(d);
                }
            }
        }
        if scheduled == self.jobs.len() {
            Ok(())
        } else {
            let stuck = remaining
                .iter()
                .zip(&self.jobs)
                .find(|(&r, _)| r > 0)
                .map(|(_, j)| j.id.clone())
                .unwrap_or_default();
            Err(DagError::Cycle(stuck))
        }
    }

    /// For each job index, the indices of jobs depending on it.
    pub(crate) fn dependents(&self) -> Vec<Vec<usize>> {
        let mut dependents = vec![Vec::new(); self.jobs.len()];
        for (i, job) in self.jobs.iter().enumerate() {
            for dep in &job.deps {
                dependents[self.index[dep]].push(i);
            }
        }
        dependents
    }

    /// The jobs, in declaration order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the DAG is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Index of the job named `id`, if any.
    pub fn position(&self, id: &str) -> Option<usize> {
        self.index.get(id).copied()
    }

    /// Restricts the DAG to `targets` plus everything they transitively
    /// depend on, preserving declaration order (`--only`). Borrows rather
    /// than consumes — job closures are shared, so one canonical DAG can
    /// hand out per-request subgraphs indefinitely.
    pub fn subgraph(&self, targets: &[String]) -> Result<Dag, DagError> {
        let mut keep = vec![false; self.jobs.len()];
        let mut stack = Vec::new();
        for t in targets {
            let i = self
                .position(t)
                .ok_or_else(|| DagError::UnknownTarget(t.clone()))?;
            stack.push(i);
        }
        while let Some(i) = stack.pop() {
            if std::mem::replace(&mut keep[i], true) {
                continue;
            }
            for dep in &self.jobs[i].deps {
                stack.push(self.index[dep]);
            }
        }
        let kept: Vec<Job> = self
            .jobs
            .iter()
            .zip(keep)
            .filter(|&(_, k)| k)
            .map(|(j, _)| j.clone())
            .collect();
        Dag::new(kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop(id: &str) -> Job {
        Job::new(id, JobOutcome::default)
    }

    #[test]
    fn accepts_a_valid_dag_in_declaration_order() {
        let dag = Dag::new(vec![
            noop("a"),
            noop("b").dep("a"),
            noop("c").deps(["a", "b"]).emits_stdout(),
        ])
        .expect("valid");
        assert_eq!(dag.len(), 3);
        let ids: Vec<&str> = dag.jobs().iter().map(Job::id).collect();
        assert_eq!(ids, ["a", "b", "c"]);
        assert!(dag.jobs()[2].is_stdout_job());
        assert!(!dag.jobs()[0].is_stdout_job());
    }

    #[test]
    fn rejects_duplicates_dangling_deps_and_cycles() {
        assert_eq!(
            Dag::new(vec![noop("a"), noop("a")]).unwrap_err(),
            DagError::DuplicateId("a".into())
        );
        assert_eq!(
            Dag::new(vec![noop("a").dep("ghost")]).unwrap_err(),
            DagError::UnknownDep {
                job: "a".into(),
                dep: "ghost".into()
            }
        );
        let err = Dag::new(vec![noop("a").dep("b"), noop("b").dep("a")]).unwrap_err();
        assert!(matches!(err, DagError::Cycle(_)), "{err:?}");
        // Self-loops are cycles too.
        let err = Dag::new(vec![noop("a").dep("a")]).unwrap_err();
        assert_eq!(err, DagError::Cycle("a".into()));
    }

    #[test]
    fn subgraph_keeps_transitive_deps_only() {
        let dag = Dag::new(vec![
            noop("data"),
            noop("oracle").dep("data"),
            noop("table2").dep("oracle"),
            noop("fig5"),
            noop("fig6").dep("oracle"),
        ])
        .expect("valid");
        let only = dag.subgraph(&["table2".into()]).expect("subgraph");
        let ids: Vec<&str> = only.jobs().iter().map(Job::id).collect();
        assert_eq!(ids, ["data", "oracle", "table2"]);

        let dag = Dag::new(vec![noop("a")]).expect("valid");
        assert_eq!(
            dag.subgraph(&["nope".into()]).unwrap_err(),
            DagError::UnknownTarget("nope".into())
        );
    }

    #[test]
    fn one_canonical_dag_serves_many_subgraphs() {
        let dag = Dag::new(vec![
            noop("data"),
            noop("oracle").dep("data"),
            noop("table2").dep("oracle"),
            noop("fig5"),
        ])
        .expect("valid");
        // `subgraph` borrows: the same DAG keeps answering requests, and a
        // failed lookup doesn't poison it.
        assert!(dag.subgraph(&["ghost".into()]).is_err());
        let a = dag.subgraph(&["table2".into()]).expect("first request");
        let b = dag.subgraph(&["fig5".into()]).expect("second request");
        assert_eq!(a.len(), 3);
        assert_eq!(b.len(), 1);
        assert_eq!(dag.len(), 4, "canonical DAG unchanged");
    }
}
