//! # av-planning — ADS planning & control
//!
//! The planning/control half of the Apollo-style stack (Fig. 1, right):
//!
//! - [`safety`]: the Jha et al. safety model the paper adopts (§II-C) —
//!   stopping distance `d_stop`, safety envelope `d_safe`, and safety
//!   potential `δ = d_safe − d_stop`, with the 4 m accident threshold.
//! - [`planner`]: a longitudinal speed planner with cruise / follow / stop /
//!   emergency-brake behaviors, pedestrian crossing prediction, and the
//!   forced-emergency-braking definition used by the evaluation.
//! - [`pid`]: the PID/jerk-limited actuation smoothing the paper mentions
//!   ("commands are smoothed out using a PID controller", §II-A).
//! - [`ads`]: the assembled ADS — perception + planner + controller behind
//!   the sensor callbacks, scheduled at Apollo-like rates by the run loop.

#![warn(missing_docs)]

pub mod ads;
pub mod pid;
pub mod planner;
pub mod safety;

pub use ads::{Ads, AdsConfig};
pub use pid::Pid;
pub use planner::{Planner, PlannerConfig, PlannerMode};
pub use safety::SafetyConfig;
