//! The assembled ADS: perception + planner + actuation smoothing.
//!
//! This is the software stack the malware attacks. The run loop (in
//! `av-experiments`) schedules the sensor callbacks at the paper's rates and
//! forwards the returned actuation to the simulated vehicle.

use crate::pid::Pid;
use crate::planner::{PlanInput, PlanOutput, Planner, PlannerConfig, PlannerMode};
use av_perception::pipeline::{Perception, PerceptionConfig};
use av_perception::types::WorldObject;
use av_sensing::frame::CameraFrame;
use av_sensing::gps::GpsImuFix;
use av_sensing::lidar::LidarScan;
use av_simkit::math::Vec2;
use av_telemetry::{Stage, Telemetry, TraceEvent};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// ADS configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct AdsConfig {
    /// Perception stack configuration.
    pub perception: PerceptionConfig,
    /// Planner configuration.
    pub planner: PlannerConfig,
}

/// The autonomous driving system under attack.
#[derive(Debug, Clone)]
pub struct Ads {
    perception: Perception,
    planner: Planner,
    actuation_pid: Pid,
    last_fix: Option<GpsImuFix>,
    latest_plan: PlanOutput,
    actuation: f64,
    eb_entries: u32,
    was_eb: bool,
    telemetry: Telemetry,
}

impl Ads {
    /// Builds an ADS from configuration.
    pub fn new(config: AdsConfig) -> Self {
        Ads {
            perception: Perception::new(config.perception),
            planner: Planner::new(config.planner),
            actuation_pid: Pid::new(1.0, 0.2, 0.0).with_output_limit(config.planner.eb_decel),
            last_fix: None,
            latest_plan: PlanOutput {
                accel: 0.0,
                mode: PlannerMode::Cruise,
                required_decel: 0.0,
            },
            actuation: 0.0,
            eb_entries: 0,
            was_eb: false,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches a telemetry handle to the ADS and its perception stack.
    /// Planning cycles are timed as [`Stage::PlannerTick`] (emitting
    /// [`TraceEvent::PlannerModeChanged`] on mode transitions and
    /// [`TraceEvent::AebEngaged`] on each emergency-braking entry); control
    /// cycles are timed as [`Stage::ControlTick`].
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.perception.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// Current believed ego position (GPS, or origin before the first fix).
    pub fn ego_position(&self) -> Vec2 {
        self.last_fix.map_or(Vec2::ZERO, |f| f.position)
    }

    /// Current believed ego speed.
    pub fn ego_speed(&self) -> f64 {
        self.last_fix.map_or(0.0, |f| f.speed)
    }

    /// Feeds a camera frame (possibly attacker-modified) to perception.
    pub fn on_camera_frame<R: Rng + ?Sized>(&mut self, frame: &CameraFrame, rng: &mut R) {
        let pos = self.ego_position();
        self.perception.on_camera_frame(frame, pos, rng);
    }

    /// Feeds a LiDAR sweep to perception.
    pub fn on_lidar(&mut self, scan: &LidarScan) {
        self.perception.on_lidar(scan);
    }

    /// Feeds a GPS/IMU fix.
    pub fn on_gps(&mut self, fix: GpsImuFix) {
        self.last_fix = Some(fix);
    }

    /// Runs one planning cycle (nominally 10 Hz) assuming the newest camera
    /// frame is current. Returns `true` when this cycle *entered* emergency
    /// braking (a new forced-EB event).
    pub fn plan_tick(&mut self) -> bool {
        let now = self.perception.last_camera_t().unwrap_or(0.0);
        self.plan_tick_at(now)
    }

    /// Runs one planning cycle at wall time `now`, surfacing camera
    /// staleness to the planner for graceful degradation.
    pub fn plan_tick_at(&mut self, now: f64) -> bool {
        let timer = self.telemetry.time(Stage::PlannerTick);
        let mode_before = self.latest_plan.mode;
        let objects = self.perception.world_model();
        let input = PlanInput {
            ego_position: self.ego_position(),
            ego_speed: self.ego_speed(),
            objects: &objects,
            camera_staleness: self.perception.camera_staleness(now),
        };
        self.latest_plan = self.planner.plan(&input);
        let is_eb = self.latest_plan.mode == PlannerMode::EmergencyBrake;
        let entered = is_eb && !self.was_eb;
        if entered {
            self.eb_entries += 1;
        }
        self.was_eb = is_eb;
        drop(timer);
        if self.telemetry.is_enabled() {
            let mode_after = self.latest_plan.mode;
            if mode_after != mode_before {
                self.telemetry.emit(now, || TraceEvent::PlannerModeChanged {
                    from: mode_before.name(),
                    to: mode_after.name(),
                });
            }
            if entered {
                self.telemetry.emit(now, || TraceEvent::AebEngaged);
            }
        }
        entered
    }

    /// Runs one control cycle (nominally 30 Hz): smooths the planned
    /// acceleration through the PID and returns the actuation `Aₜ`.
    pub fn control_tick(&mut self, dt: f64) -> f64 {
        let _timer = self.telemetry.time(Stage::ControlTick);
        let target = self.latest_plan.accel;
        if self.latest_plan.mode == PlannerMode::EmergencyBrake {
            // Emergency braking bypasses comfort smoothing (Apollo's EStop).
            self.actuation = target;
            self.actuation_pid.reset();
        } else {
            let error = target - self.actuation;
            self.actuation += self.actuation_pid.step(error, dt) * dt * 8.0;
            self.actuation = self.actuation.clamp(-self.planner.config().eb_decel, 2.0);
        }
        self.actuation
    }

    /// The fused world model (for recording/diagnostics).
    pub fn world_model(&self) -> Vec<WorldObject> {
        self.perception.world_model()
    }

    /// Latest planning decision.
    pub fn plan(&self) -> PlanOutput {
        self.latest_plan
    }

    /// Whether the ADS is currently emergency braking.
    pub fn emergency_braking(&self) -> bool {
        self.latest_plan.mode == PlannerMode::EmergencyBrake
    }

    /// Number of distinct emergency-braking entries so far.
    pub fn eb_entries(&self) -> u32 {
        self.eb_entries
    }

    /// Access to the perception stack (diagnostics).
    pub fn perception(&self) -> &Perception {
        &self.perception
    }

    /// Clears all state (between runs).
    pub fn reset(&mut self) {
        self.perception.reset();
        self.planner.reset();
        self.actuation_pid.reset();
        self.last_fix = None;
        self.latest_plan = PlanOutput {
            accel: 0.0,
            mode: PlannerMode::Cruise,
            required_decel: 0.0,
        };
        self.actuation = 0.0;
        self.eb_entries = 0;
        self.was_eb = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_perception::calibration::DetectorCalibration;
    use av_sensing::camera::Camera;
    use av_sensing::frame::capture;
    use av_sensing::gps::GpsImu;
    use av_sensing::lidar::Lidar;
    use av_simkit::actor::{Actor, ActorId, ActorKind};
    use av_simkit::behavior::Behavior;
    use av_simkit::road::Road;
    use av_simkit::world::World;
    use rand::SeedableRng;

    fn ads() -> Ads {
        let mut config = AdsConfig::default();
        config.perception.calibration = DetectorCalibration::ideal();
        Ads::new(config)
    }

    /// Drives `world` under the ADS for `seconds`, returning the final world.
    fn drive(mut world: World, mut ads: Ads, seconds: f64) -> (World, Ads) {
        let camera = Camera::default();
        let lidar = Lidar::default();
        let gps = GpsImu {
            position_noise: 0.0,
            speed_noise: 0.0,
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let dt = 1.0 / 30.0;
        let steps = (seconds * 30.0) as u64;
        let mut accel = 0.0;
        for i in 0..steps {
            if i % 2 == 0 {
                let frame = capture(&camera, &world, i, false);
                ads.on_gps(gps.fix(&world, &mut rng));
                ads.on_camera_frame(&frame, &mut rng);
            }
            if i % 3 == 0 {
                ads.on_lidar(&lidar.scan(&world, &mut rng));
                ads.plan_tick();
            }
            accel = ads.control_tick(dt);
            world.step(dt, accel);
        }
        let _ = accel;
        (world, ads)
    }

    #[test]
    fn cruises_to_set_speed_on_empty_road() {
        let ego = Actor::new(ActorId(0), ActorKind::Car, Vec2::ZERO, 5.0, Behavior::Ego);
        let world = World::new(Road::default(), ego);
        let (world, ads) = drive(world, ads(), 15.0);
        assert!(
            (world.ego().speed - 12.5).abs() < 0.5,
            "speed {}",
            world.ego().speed
        );
        assert_eq!(ads.eb_entries(), 0);
    }

    #[test]
    fn follows_slow_lead_without_collision() {
        // DS-1 golden: approach a 25 kph lead from 60 m back at 45 kph.
        let ego = Actor::new(ActorId(0), ActorKind::Car, Vec2::ZERO, 12.5, Behavior::Ego);
        let mut world = World::new(Road::default(), ego);
        let v_tv = 25.0 / 3.6;
        world
            .add_actor(Actor::new(
                ActorId(1),
                ActorKind::Car,
                Vec2::new(60.0, 0.0),
                v_tv,
                Behavior::CruiseStraight { speed: v_tv },
            ))
            .unwrap();
        let (world, ads) = drive(world, ads(), 30.0);
        let gap = world.in_path_obstacle(0.3).unwrap().gap;
        assert!(gap > 10.0, "keeps a safe gap: {gap}");
        assert!(gap < 35.0, "actually follows: {gap}");
        assert!(
            (world.ego().speed - v_tv).abs() < 1.0,
            "matched speed: {}",
            world.ego().speed
        );
        assert_eq!(ads.eb_entries(), 0, "golden run has no emergency braking");
    }

    #[test]
    fn stops_for_stationary_car_in_lane() {
        let ego = Actor::new(ActorId(0), ActorKind::Car, Vec2::ZERO, 12.5, Behavior::Ego);
        let mut world = World::new(Road::default(), ego);
        world
            .add_actor(Actor::new(
                ActorId(1),
                ActorKind::Car,
                Vec2::new(80.0, 0.0),
                0.0,
                Behavior::Parked,
            ))
            .unwrap();
        let (world, _) = drive(world, ads(), 20.0);
        assert!(world.ego().speed < 0.2, "stopped: {}", world.ego().speed);
        let gap = world.in_path_obstacle(0.3).unwrap().gap;
        assert!(gap > 2.0, "did not hit the car: {gap}");
    }

    #[test]
    fn camera_silence_degrades_gracefully() {
        let mut a = ads();
        let camera = Camera::default();
        let gps = GpsImu {
            position_noise: 0.0,
            speed_noise: 0.0,
        };
        let ego = Actor::new(ActorId(0), ActorKind::Car, Vec2::ZERO, 12.5, Behavior::Ego);
        let mut world = World::new(Road::default(), ego);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        // Healthy warm-up: frames arriving on schedule.
        for i in 0..10 {
            let frame = capture(&camera, &world, i, false);
            a.on_gps(gps.fix(&world, &mut rng));
            a.on_camera_frame(&frame, &mut rng);
            world.step(1.0 / 15.0, 0.0);
        }
        let fresh = a.plan_tick_at(world.time());
        assert!(!fresh);
        assert_ne!(a.plan().mode, PlannerMode::Degraded);
        // Camera goes silent: staleness grows past the blind threshold.
        let blind_at = world.time() + a.planner.config().staleness_blind + 0.1;
        a.plan_tick_at(blind_at);
        assert_eq!(a.plan().mode, PlannerMode::Degraded);
        assert!(a.plan().accel <= -a.planner.config().comfort_decel + 1e-9);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut a = ads();
        a.on_gps(GpsImuFix {
            t: 0.0,
            position: Vec2::new(5.0, 0.0),
            speed: 3.0,
            accel: 0.0,
        });
        a.plan_tick();
        a.reset();
        assert_eq!(a.ego_position(), Vec2::ZERO);
        assert_eq!(a.eb_entries(), 0);
        assert!(a.world_model().is_empty());
    }
}
