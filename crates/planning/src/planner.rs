//! Longitudinal speed planner with emergency braking.
//!
//! A deliberately Apollo-shaped behavior set: cruise at the scenario speed,
//! follow a slower lead vehicle at a headway-based gap, brake to a stop
//! short of stationary in-path obstacles, yield to crossing pedestrians
//! (with a simple crossing prediction), proceed cautiously past pedestrians
//! on the roadway, and fall into **emergency braking** when the required
//! deceleration exceeds the comfortable envelope. The emergency-braking
//! transition is the "forced emergency braking" event the paper counts
//! (Table II), and the planner's inputs are exactly the fused world model —
//! which is what the attack corrupts.

use crate::safety::SafetyConfig;
use av_perception::types::WorldObject;
use av_simkit::math::{interval_overlap, Vec2};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Planner behavior mode (diagnostic; the binding constraint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlannerMode {
    /// Tracking the cruise speed; path clear.
    Cruise,
    /// Following a slower lead vehicle.
    Follow,
    /// Braking to stop short of an obstacle.
    Brake,
    /// Emergency braking (required decel exceeded the comfort envelope).
    EmergencyBrake,
    /// Stopped, waiting for the path to clear.
    Hold,
    /// Graceful degradation: camera data too stale to trust — slowing to a
    /// stop at the comfort envelope on the last known world model.
    Degraded,
}

impl PlannerMode {
    /// Stable snake_case name used in trace events and reports.
    pub fn name(self) -> &'static str {
        match self {
            PlannerMode::Cruise => "cruise",
            PlannerMode::Follow => "follow",
            PlannerMode::Brake => "brake",
            PlannerMode::EmergencyBrake => "emergency_brake",
            PlannerMode::Hold => "hold",
            PlannerMode::Degraded => "degraded",
        }
    }
}

/// Planner configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// Cruise set-speed (m/s).
    pub cruise_speed: f64,
    /// Maximum acceleration command (m/s²).
    pub accel_limit: f64,
    /// Comfortable deceleration bound (m/s²).
    pub comfort_decel: f64,
    /// Emergency deceleration (m/s²) applied while emergency braking.
    pub eb_decel: f64,
    /// Required deceleration that triggers emergency braking (m/s²).
    pub eb_trigger: f64,
    /// Required deceleration below which emergency braking releases (m/s²).
    pub eb_release: f64,
    /// Extra lateral margin around the ego footprint for the corridor (m).
    pub corridor_margin: f64,
    /// Ego half width (m).
    pub ego_half_width: f64,
    /// Ego half length (m).
    pub ego_half_length: f64,
    /// Follow-gap headway time (s): desired gap = min_gap + headway·v.
    pub headway: f64,
    /// Minimum follow gap (m).
    pub min_gap: f64,
    /// Stop margin short of a stationary vehicle (m).
    pub stop_margin_vehicle: f64,
    /// Stop margin short of a pedestrian (m) — the paper's DS-2 golden run
    /// stops ≥ 10 m away.
    pub stop_margin_ped: f64,
    /// Hard margin used when computing the required (EB-triggering) decel (m).
    pub hard_margin: f64,
    /// Required decel at which braking actually starts (m/s²).
    pub brake_activation: f64,
    /// Caution speed near pedestrians on the roadway (m/s).
    pub caution_speed: f64,
    /// Range within which a roadway pedestrian caps the speed (m).
    pub caution_range: f64,
    /// Half width of the drivable roadway (m).
    pub road_half_width: f64,
    /// Lateral speed toward the centerline that marks a crossing pedestrian (m/s).
    pub crossing_vy: f64,
    /// Planner ticks a pedestrian crossing threat must persist before
    /// braking (noisy lateral-velocity evidence).
    pub threat_persistence: u32,
    /// Planner ticks a stationary in-corridor vehicle must persist before
    /// braking (lateral-noise phantoms).
    pub vehicle_persistence: u32,
    /// Objects farther than this are not considered (m).
    pub consider_range: f64,
    /// Upward jerk limit on positive (cruise-recovery) acceleration
    /// (m/s³). Apollo's speed planner ramps back up sluggishly after a
    /// slowdown; this is what makes *when* an attack blinds the EV matter.
    pub accel_ramp_jerk: f64,
    /// Planning tick period (s).
    pub tick_dt: f64,
    /// Camera staleness (s) past which the planner stops accelerating and
    /// caps speed at the caution speed (graceful degradation, stage 1).
    pub staleness_caution: f64,
    /// Camera staleness (s) past which the planner treats perception as
    /// blind and brakes to a stop at the comfort envelope (stage 2).
    pub staleness_blind: f64,
    /// Safety model (for diagnostics and `d_safe,min`).
    pub safety: SafetyConfig,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            cruise_speed: 45.0 / 3.6,
            accel_limit: 1.5,
            comfort_decel: 4.0,
            eb_decel: 6.0,
            eb_trigger: 4.2,
            eb_release: 2.0,
            corridor_margin: 0.3,
            ego_half_width: 0.95,
            ego_half_length: 2.3,
            headway: 1.44,
            min_gap: 10.0,
            stop_margin_vehicle: 6.0,
            stop_margin_ped: 10.0,
            hard_margin: 4.0,
            brake_activation: 2.5,
            caution_speed: 35.0 / 3.6,
            caution_range: 40.0,
            road_half_width: 5.25,
            crossing_vy: 1.1,
            threat_persistence: 8,
            vehicle_persistence: 4,
            consider_range: 80.0,
            accel_ramp_jerk: 0.25,
            tick_dt: 0.1,
            staleness_caution: 0.4,
            staleness_blind: 1.2,
            safety: SafetyConfig::default(),
        }
    }
}

/// Inputs to one planning cycle.
#[derive(Debug, Clone)]
pub struct PlanInput<'a> {
    /// Ego position (world frame, from GPS/IMU).
    pub ego_position: Vec2,
    /// Ego speed (m/s).
    pub ego_speed: f64,
    /// Fused world model `Wt`.
    pub objects: &'a [WorldObject],
    /// Seconds since the perception pipeline last received a fresh camera
    /// frame (0 = fresh). Drives graceful degradation: the world model in
    /// `objects` is this many seconds old.
    pub camera_staleness: f64,
}

/// Output of one planning cycle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanOutput {
    /// Commanded acceleration (m/s²; braking negative).
    pub accel: f64,
    /// The binding behavior mode.
    pub mode: PlannerMode,
    /// The largest deceleration any constraint currently requires (m/s²) —
    /// the quantity compared against the emergency-braking trigger.
    pub required_decel: f64,
}

/// Longitudinal planner with per-object threat persistence and an
/// emergency-braking latch.
#[derive(Debug, Clone)]
pub struct Planner {
    config: PlannerConfig,
    eb_latched: bool,
    ramp_accel: f64,
    threat_ticks: HashMap<u64, u32>,
    /// Pedestrians that crossed the threat threshold stay stop-obstacles
    /// until they leave the roadway (the DS-2 golden behavior: "the EV
    /// started traveling again when the pedestrian moved off the road") or
    /// show no crossing intent for `STICKY_EXPIRY` consecutive ticks.
    sticky_threats: HashMap<u64, u32>,
}

/// Planner ticks after which a quiescent sticky threat is released.
const STICKY_EXPIRY: u32 = 20;

impl Planner {
    /// Creates a planner.
    pub fn new(config: PlannerConfig) -> Self {
        Planner {
            config,
            eb_latched: false,
            ramp_accel: 0.0,
            threat_ticks: HashMap::new(),
            sticky_threats: HashMap::new(),
        }
    }

    /// The planner configuration.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Whether the emergency-braking latch is currently engaged.
    pub fn emergency_braking(&self) -> bool {
        self.eb_latched
    }

    /// Runs one planning cycle.
    pub fn plan(&mut self, input: &PlanInput<'_>) -> PlanOutput {
        let cfg = &self.config;
        let v = input.ego_speed.max(0.0);
        let ego_front = input.ego_position.x + cfg.ego_half_length;
        let corridor_half = cfg.ego_half_width + cfg.corridor_margin;
        let (cy0, cy1) = (
            input.ego_position.y - corridor_half,
            input.ego_position.y + corridor_half,
        );

        let mut speed_target = cfg.cruise_speed;
        let mut best_accel = cfg.accel_limit;
        let mut mode = PlannerMode::Cruise;
        let mut required_decel: f64 = 0.0;

        // Graceful degradation, stage 1: with a stale world model the
        // planner will not speed up into the unknown — cap the target at
        // the caution speed and forbid positive acceleration (below).
        let degraded_caution = input.camera_staleness >= cfg.staleness_caution;
        let degraded_blind = input.camera_staleness >= cfg.staleness_blind;
        if degraded_caution {
            speed_target = speed_target.min(cfg.caution_speed);
        }

        // Drop state for objects that vanished from the world model.
        let live: std::collections::HashSet<u64> = input.objects.iter().map(|o| o.id).collect();
        self.threat_ticks.retain(|id, _| live.contains(id));
        self.sticky_threats.retain(|id, _| live.contains(id));

        for obj in input.objects {
            let (ox0, ox1) = obj.longitudinal_extent();
            if ox1 < ego_front {
                continue; // behind
            }
            let gap = (ox0 - ego_front).max(0.0);
            if gap > cfg.consider_range {
                continue; // beyond the planning horizon
            }
            let (oy0, oy1) = obj.lateral_extent();
            let in_corridor = interval_overlap(cy0, cy1, oy0, oy1) > 0.0;
            let on_road = obj.position.y.abs() <= cfg.road_half_width;

            // Per-object constraint → (stop_margin, follow target speed).
            let constraint: Option<(f64, Option<f64>)> = if obj.kind.is_vehicle() {
                if !in_corridor {
                    self.threat_ticks.remove(&obj.id);
                    None
                } else if obj.velocity.x > 1.0 {
                    // Moving lead vehicle: follow immediately.
                    Some((cfg.min_gap, Some(obj.velocity.x)))
                } else {
                    // Stationary vehicle in lane: require persistence so
                    // one-frame lateral-noise phantoms do not brake the EV.
                    let ticks = self.threat_ticks.entry(obj.id).or_insert(0);
                    *ticks += 1;
                    (*ticks >= cfg.vehicle_persistence).then_some((cfg.stop_margin_vehicle, None))
                }
            } else if !on_road {
                // Pedestrian off the roadway: no constraint, threat cleared.
                self.threat_ticks.remove(&obj.id);
                self.sticky_threats.remove(&obj.id);
                None
            } else {
                let toward_center = -obj.position.y.signum() * obj.velocity.y;
                let crossing = toward_center > cfg.crossing_vy;
                let threat_now = in_corridor || crossing;
                if threat_now {
                    let ticks = self.threat_ticks.entry(obj.id).or_insert(0);
                    *ticks += 1;
                    // Corridor evidence convinces fast; crossing-intent
                    // evidence (noisy lateral velocity) must persist longer.
                    if (in_corridor && *ticks >= 2) || *ticks >= cfg.threat_persistence {
                        self.sticky_threats.insert(obj.id, 0);
                    }
                } else if let Some(quiet) = self.sticky_threats.get_mut(&obj.id) {
                    *quiet += 1;
                    if *quiet > STICKY_EXPIRY {
                        self.sticky_threats.remove(&obj.id);
                        self.threat_ticks.remove(&obj.id);
                    }
                } else {
                    self.threat_ticks.remove(&obj.id);
                }
                if self.sticky_threats.contains_key(&obj.id) {
                    Some((cfg.stop_margin_ped, None))
                } else {
                    if gap < cfg.caution_range {
                        speed_target = speed_target.min(cfg.caution_speed);
                    }
                    None
                }
            };

            let Some((margin, follow_speed)) = constraint else {
                continue;
            };

            // A constrained obstacle inside the minimum safety envelope
            // (plus half a second of headway) while a hard stop would be
            // needed is an emergency regardless of the follow arithmetic —
            // a suddenly (re)appearing obstacle at close range forces an
            // emergency stop (the d_safe,min rule, §II-C).
            let hard_stop_decel = v * v / (2.0 * (gap - cfg.hard_margin).max(0.3));
            if gap < cfg.safety.d_safe_min + 0.5 * v && v > 3.0 && hard_stop_decel >= 2.5 {
                required_decel = required_decel.max(cfg.eb_trigger);
            }

            match follow_speed {
                Some(v_lead) => {
                    // Follow a moving lead vehicle at a headway gap.
                    let desired = cfg.min_gap + cfg.headway * v;
                    let a = 0.25 * (gap - desired) + 0.9 * (v_lead - v);
                    let a = a.clamp(-cfg.comfort_decel, cfg.accel_limit);
                    if a < best_accel {
                        best_accel = a;
                        mode = PlannerMode::Follow;
                    }
                    // Required decel to avoid closing to the hard margin.
                    let closing = v - v_lead;
                    if closing > 0.0 {
                        let free = (gap - cfg.hard_margin).max(0.3);
                        required_decel = required_decel.max(closing * closing / (2.0 * free));
                    }
                }
                None => {
                    // Brake to stop `margin` short of the obstacle.
                    let free_soft = gap - margin;
                    let a_req_soft = if free_soft <= 0.2 {
                        cfg.eb_decel
                    } else {
                        v * v / (2.0 * free_soft)
                    };
                    if a_req_soft >= cfg.brake_activation {
                        let a = -a_req_soft.min(cfg.eb_decel);
                        if a < best_accel {
                            best_accel = a;
                            mode = PlannerMode::Brake;
                        }
                    }
                    let free_hard = (gap - cfg.hard_margin).max(0.3);
                    required_decel = required_decel.max(v * v / (2.0 * free_hard));
                }
            }
        }
        // Cruise / caution speed tracking competes with the constraints.
        let a_cruise = (0.8 * (speed_target - v)).clamp(-cfg.comfort_decel, cfg.accel_limit);
        if a_cruise < best_accel {
            best_accel = a_cruise;
            // Only claim Cruise mode if no constraint was binding.
            if mode == PlannerMode::Cruise {
                mode = PlannerMode::Cruise;
            }
        }

        // Emergency braking latch.
        if required_decel >= cfg.eb_trigger {
            self.eb_latched = true;
        } else if required_decel < cfg.eb_release {
            self.eb_latched = false;
        }
        if self.eb_latched && v > 0.0 {
            best_accel = -cfg.eb_decel;
            mode = PlannerMode::EmergencyBrake;
        }

        // Graceful degradation, stage 2: perception is effectively blind —
        // brake to a stop at the comfort envelope on whatever constraint is
        // already binding. Emergency braking (stronger) keeps priority.
        if mode != PlannerMode::EmergencyBrake {
            if degraded_blind {
                best_accel = best_accel.min(-cfg.comfort_decel);
                mode = PlannerMode::Degraded;
            } else if degraded_caution && best_accel > 0.0 {
                best_accel = 0.0;
                if mode == PlannerMode::Cruise {
                    mode = PlannerMode::Degraded;
                }
            }
        }

        // Jerk-limited cruise recovery: positive acceleration ramps up
        // slowly after any slowdown.
        if best_accel > 0.0 {
            let allowed = self.ramp_accel + cfg.accel_ramp_jerk * cfg.tick_dt;
            best_accel = best_accel.min(allowed);
            self.ramp_accel = best_accel;
        } else {
            self.ramp_accel = 0.0;
        }

        // Stopped and still constrained → hold.
        if v < 0.05 && best_accel < 0.0 {
            best_accel = 0.0;
            mode = PlannerMode::Hold;
        }

        PlanOutput {
            accel: best_accel,
            mode,
            required_decel,
        }
    }

    /// Clears planner state (between runs).
    pub fn reset(&mut self) {
        self.eb_latched = false;
        self.ramp_accel = 0.0;
        self.threat_ticks.clear();
        self.sticky_threats.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_perception::types::Support;
    use av_simkit::actor::ActorKind;

    fn obj(id: u64, kind: ActorKind, x: f64, y: f64, vx: f64, vy: f64) -> WorldObject {
        let extent = if kind.is_vehicle() {
            (4.6, 1.9)
        } else {
            (0.5, 0.6)
        };
        WorldObject {
            id,
            kind,
            position: Vec2::new(x, y),
            velocity: Vec2::new(vx, vy),
            extent,
            support: Support::CameraAndLidar,
            track: None,
            provenance: None,
        }
    }

    fn plan(planner: &mut Planner, v: f64, objects: &[WorldObject]) -> PlanOutput {
        planner.plan(&PlanInput {
            ego_position: Vec2::ZERO,
            ego_speed: v,
            objects,
            camera_staleness: 0.0,
        })
    }

    fn plan_stale(planner: &mut Planner, v: f64, staleness: f64) -> PlanOutput {
        planner.plan(&PlanInput {
            ego_position: Vec2::ZERO,
            ego_speed: v,
            objects: &[],
            camera_staleness: staleness,
        })
    }

    #[test]
    fn clear_road_cruises() {
        let mut p = Planner::new(PlannerConfig::default());
        let out = plan(&mut p, 10.0, &[]);
        assert_eq!(out.mode, PlannerMode::Cruise);
        assert!(out.accel > 0.0, "accelerates toward cruise speed");
        let out2 = plan(&mut p, 14.0, &[]);
        assert!(out2.accel < 0.0, "slows back toward cruise speed");
    }

    #[test]
    fn follows_slower_lead_at_headway_gap() {
        let mut p = Planner::new(PlannerConfig::default());
        // Lead at the desired gap for v_lead: 10 + 1.44*6.94 ≈ 20 m.
        let lead = obj(1, ActorKind::Car, 20.0 + 2.3 + 2.3, 0.0, 6.94, 0.0);
        let out = plan(&mut p, 6.94, &[lead]);
        assert_eq!(out.mode, PlannerMode::Follow);
        assert!(out.accel.abs() < 0.3, "steady follow: {}", out.accel);
    }

    #[test]
    fn stationary_vehicle_in_lane_causes_braking() {
        let mut p = Planner::new(PlannerConfig::default());
        let parked = obj(1, ActorKind::Car, 35.0, 0.0, 0.0, 0.0);
        // One-frame phantoms are ignored (persistence gate)...
        let first = plan(&mut p, 12.5, &[parked]);
        assert_ne!(first.mode, PlannerMode::Brake);
        let n = p.config().vehicle_persistence;
        for _ in 0..n - 2 {
            plan(&mut p, 12.5, &[parked]);
        }
        // ...but a persistent stationary obstacle brakes the EV.
        let out = plan(&mut p, 12.5, &[parked]);
        assert_eq!(out.mode, PlannerMode::Brake);
        assert!(out.accel < -1.0);
    }

    #[test]
    fn vehicle_out_of_lane_is_ignored() {
        let mut p = Planner::new(PlannerConfig::default());
        let parked = obj(1, ActorKind::Car, 35.0, -3.5, 0.0, 0.0);
        let out = plan(&mut p, 12.5, &[parked]);
        assert_eq!(out.mode, PlannerMode::Cruise);
    }

    #[test]
    fn emergency_brake_when_obstacle_appears_close() {
        let mut p = Planner::new(PlannerConfig::default());
        // A Move_In-style sudden obstacle 15 m ahead at 45 kph.
        let fake = obj(1, ActorKind::Car, 15.0, 0.0, 0.0, 0.0);
        let n = p.config().vehicle_persistence;
        for _ in 0..n {
            plan(&mut p, 12.5, &[fake]);
        }
        let out = plan(&mut p, 12.5, &[fake]);
        assert_eq!(out.mode, PlannerMode::EmergencyBrake);
        assert!(p.emergency_braking());
        assert!(out.accel <= -(p.config().eb_decel - 0.1));
        // Clears once the obstacle is gone and decel demand drops.
        let out2 = plan(&mut p, 10.0, &[]);
        assert_ne!(out2.mode, PlannerMode::EmergencyBrake);
        assert!(!p.emergency_braking());
    }

    #[test]
    fn crossing_pedestrian_triggers_stop_after_persistence() {
        let mut p = Planner::new(PlannerConfig::default());
        // Pedestrian on the roadway moving toward the centerline at 1.4 m/s.
        let ped = obj(7, ActorKind::Pedestrian, 36.0, -4.0, 0.0, 1.4);
        let o1 = plan(&mut p, 12.5, &[ped]);
        // Caution cap may slow us, but no hard braking yet (persistence).
        assert_ne!(o1.mode, PlannerMode::Brake);
        let n = p.config().threat_persistence;
        for _ in 0..n - 2 {
            plan(&mut p, 12.5, &[ped]);
        }
        let o_n = plan(&mut p, 12.5, &[ped]);
        assert_eq!(o_n.mode, PlannerMode::Brake, "threat persisted");
    }

    #[test]
    fn pedestrian_in_corridor_brakes_within_two_ticks() {
        let mut p = Planner::new(PlannerConfig::default());
        let ped = obj(7, ActorKind::Pedestrian, 30.0, 0.0, 0.0, 0.0);
        plan(&mut p, 12.5, &[ped]);
        let out = plan(&mut p, 12.5, &[ped]);
        assert!(matches!(
            out.mode,
            PlannerMode::Brake | PlannerMode::EmergencyBrake
        ));
    }

    #[test]
    fn walking_pedestrian_in_parking_lane_caps_speed_only() {
        let mut p = Planner::new(PlannerConfig::default());
        // DS-4: pedestrian in the parking lane, no lateral motion.
        let ped = obj(7, ActorKind::Pedestrian, 30.0, -3.3, -1.4, 0.0);
        for _ in 0..5 {
            let out = plan(&mut p, 12.5, &[ped]);
            assert_ne!(
                out.mode,
                PlannerMode::Brake,
                "no hard brake for DS-4 golden"
            );
            assert!(out.accel < 0.0, "slows toward caution speed");
        }
        // At caution speed the planner no longer decelerates.
        let out = plan(&mut p, 35.0 / 3.6, &[ped]);
        assert!(out.accel.abs() < 0.2);
    }

    #[test]
    fn receding_pedestrian_releases_threat() {
        let mut p = Planner::new(PlannerConfig::default());
        let crossing = obj(7, ActorKind::Pedestrian, 40.0, -4.0, 0.0, 1.4);
        let n = p.config().threat_persistence;
        for _ in 0..n {
            plan(&mut p, 12.5, &[crossing]);
        }
        assert_eq!(plan(&mut p, 12.5, &[crossing]).mode, PlannerMode::Brake);
        // Pedestrian now past the lane, moving away on the far side.
        let receding = obj(7, ActorKind::Pedestrian, 40.0, 3.0, 0.0, 1.4);
        let out = plan(&mut p, 8.0, &[receding]);
        assert_ne!(out.mode, PlannerMode::Brake, "threat released");
    }

    #[test]
    fn hold_when_stopped_before_obstacle() {
        let mut p = Planner::new(PlannerConfig::default());
        let ped = obj(7, ActorKind::Pedestrian, 12.0, 0.0, 0.0, 0.0);
        plan(&mut p, 0.0, &[ped]);
        let out = plan(&mut p, 0.0, &[ped]);
        assert_eq!(out.mode, PlannerMode::Hold);
        assert_eq!(out.accel, 0.0);
    }

    #[test]
    fn required_decel_reported_for_follow_closing() {
        let mut p = Planner::new(PlannerConfig::default());
        let lead = obj(1, ActorKind::Car, 14.0, 0.0, 2.0, 0.0);
        let out = plan(&mut p, 12.0, &[lead]);
        assert!(
            out.required_decel > 4.0,
            "closing fast: {}",
            out.required_decel
        );
    }

    #[test]
    fn fresh_data_keeps_full_authority() {
        let mut p = Planner::new(PlannerConfig::default());
        let out = plan_stale(&mut p, 10.0, 0.0);
        assert_eq!(out.mode, PlannerMode::Cruise);
        assert!(out.accel > 0.0);
    }

    #[test]
    fn caution_staleness_stops_accelerating() {
        let mut p = Planner::new(PlannerConfig::default());
        let cfg = *p.config();
        // Below cruise speed, fresh data would accelerate; stale data holds.
        let out = plan_stale(&mut p, 8.0, cfg.staleness_caution + 0.01);
        assert_eq!(out.accel, 0.0, "no acceleration into a stale world");
        assert_eq!(out.mode, PlannerMode::Degraded);
        // Above the caution speed the cap actively slows the EV.
        let out = plan_stale(&mut p, cfg.cruise_speed, cfg.staleness_caution + 0.01);
        assert!(
            out.accel < 0.0,
            "slowing toward caution speed: {}",
            out.accel
        );
    }

    #[test]
    fn blind_staleness_brakes_to_a_stop() {
        let mut p = Planner::new(PlannerConfig::default());
        let cfg = *p.config();
        let out = plan_stale(&mut p, 12.5, cfg.staleness_blind + 0.01);
        assert_eq!(out.mode, PlannerMode::Degraded);
        assert!(
            out.accel <= -cfg.comfort_decel + 1e-9,
            "comfort-envelope stop"
        );
        // Once stopped, hold rather than command further deceleration.
        let stopped = plan_stale(&mut p, 0.0, cfg.staleness_blind + 0.01);
        assert_eq!(stopped.mode, PlannerMode::Hold);
        assert_eq!(stopped.accel, 0.0);
    }

    #[test]
    fn emergency_braking_outranks_degradation() {
        let mut p = Planner::new(PlannerConfig::default());
        let fake = obj(1, ActorKind::Car, 15.0, 0.0, 0.0, 0.0);
        let n = p.config().vehicle_persistence + 1;
        for _ in 0..n {
            plan(&mut p, 12.5, &[fake]);
        }
        assert!(p.emergency_braking());
        let out = p.plan(&PlanInput {
            ego_position: Vec2::ZERO,
            ego_speed: 12.5,
            objects: &[fake],
            camera_staleness: 10.0,
        });
        assert_eq!(
            out.mode,
            PlannerMode::EmergencyBrake,
            "EB wins over Degraded"
        );
        assert!(out.accel <= -(p.config().eb_decel - 0.1));
    }

    #[test]
    fn reset_clears_latch() {
        let mut p = Planner::new(PlannerConfig::default());
        let n = p.config().vehicle_persistence + 1;
        for _ in 0..n {
            plan(&mut p, 12.5, &[obj(1, ActorKind::Car, 15.0, 0.0, 0.0, 0.0)]);
        }
        assert!(p.emergency_braking());
        p.reset();
        assert!(!p.emergency_braking());
    }
}
