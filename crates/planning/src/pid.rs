//! PID controller with output and jerk limiting (§II-A: "commands are
//! smoothed out using a PID controller ... so the AV does not make any
//! sudden changes in Aₜ").

use serde::{Deserialize, Serialize};

/// A discrete PID controller with anti-windup and slew (jerk) limiting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pid {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Derivative gain.
    pub kd: f64,
    /// Output clamp (symmetric ±limit when `Some`).
    pub output_limit: Option<f64>,
    /// Maximum output slew rate per second (jerk limit for acceleration
    /// outputs).
    pub slew_limit: Option<f64>,
    integral: f64,
    last_error: Option<f64>,
    last_output: f64,
}

impl Pid {
    /// Creates a PID controller with the given gains and no limits.
    pub fn new(kp: f64, ki: f64, kd: f64) -> Self {
        Pid {
            kp,
            ki,
            kd,
            output_limit: None,
            slew_limit: None,
            integral: 0.0,
            last_error: None,
            last_output: 0.0,
        }
    }

    /// Builder: clamp the output to ±`limit`.
    pub fn with_output_limit(mut self, limit: f64) -> Self {
        self.output_limit = Some(limit);
        self
    }

    /// Builder: limit the output slew rate (units per second).
    pub fn with_slew_limit(mut self, limit: f64) -> Self {
        self.slew_limit = Some(limit);
        self
    }

    /// Advances the controller by `dt` seconds with tracking error `error`
    /// (setpoint − measurement) and returns the new output.
    pub fn step(&mut self, error: f64, dt: f64) -> f64 {
        debug_assert!(dt > 0.0, "non-positive dt {dt}");
        self.integral += error * dt;
        // Anti-windup: bound the integral contribution to the output limit.
        if let (Some(limit), true) = (self.output_limit, self.ki.abs() > 1e-12) {
            let max_integral = limit / self.ki.abs();
            self.integral = self.integral.clamp(-max_integral, max_integral);
        }
        let derivative = self.last_error.map_or(0.0, |e0| (error - e0) / dt);
        self.last_error = Some(error);

        let mut out = self.kp * error + self.ki * self.integral + self.kd * derivative;
        if let Some(limit) = self.output_limit {
            out = out.clamp(-limit, limit);
        }
        if let Some(slew) = self.slew_limit {
            let max_step = slew * dt;
            out = out.clamp(self.last_output - max_step, self.last_output + max_step);
        }
        self.last_output = out;
        out
    }

    /// The most recent output.
    pub fn output(&self) -> f64 {
        self.last_output
    }

    /// Resets all internal state.
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.last_error = None;
        self.last_output = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_only_tracks_error() {
        let mut pid = Pid::new(2.0, 0.0, 0.0);
        assert_eq!(pid.step(1.5, 0.1), 3.0);
        assert_eq!(pid.step(-1.0, 0.1), -2.0);
    }

    #[test]
    fn integral_removes_steady_state_error() {
        // Plant: x' = u; setpoint 1.0; P-only would leave residual error
        // against a disturbance d = -0.5.
        let mut pid = Pid::new(1.0, 2.0, 0.0);
        let mut x = 0.0;
        for _ in 0..2000 {
            let u = pid.step(1.0 - x, 0.01);
            x += (u - 0.5) * 0.01;
        }
        assert!((x - 1.0).abs() < 0.02, "x = {x}");
    }

    #[test]
    fn output_limit_clamps() {
        let mut pid = Pid::new(100.0, 0.0, 0.0).with_output_limit(5.0);
        assert_eq!(pid.step(10.0, 0.1), 5.0);
        assert_eq!(pid.step(-10.0, 0.1), -5.0);
    }

    #[test]
    fn slew_limit_bounds_rate_of_change() {
        let mut pid = Pid::new(100.0, 0.0, 0.0).with_slew_limit(10.0);
        let out1 = pid.step(100.0, 0.1);
        assert!((out1 - 1.0).abs() < 1e-9, "first step bounded: {out1}");
        let out2 = pid.step(100.0, 0.1);
        assert!((out2 - 2.0).abs() < 1e-9, "ramps at slew rate: {out2}");
    }

    #[test]
    fn anti_windup_bounds_integral() {
        let mut pid = Pid::new(0.0, 1.0, 0.0).with_output_limit(2.0);
        for _ in 0..1000 {
            pid.step(10.0, 0.1);
        }
        // After the error flips, recovery must be quick (integral bounded).
        let mut steps = 0;
        while pid.step(-10.0, 0.1) > 0.0 {
            steps += 1;
            assert!(steps < 100, "integral wind-up detected");
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut pid = Pid::new(1.0, 1.0, 1.0);
        pid.step(5.0, 0.1);
        pid.reset();
        assert_eq!(pid.output(), 0.0);
        assert_eq!(pid.step(0.0, 0.1), 0.0);
    }
}
