//! The AV safety model of Jha et al., as adopted by the paper (§II-C).
//!
//! - **Def. 3** — stopping distance `d_stop`: how far the vehicle travels
//!   before stopping at the maximum *comfortable* deceleration.
//! - **Def. 4** — safety envelope `d_safe`: how far the AV can travel
//!   without colliding (the bumper gap to the nearest in-path obstacle).
//! - **Def. 5** — safety potential `δ = d_safe − d_stop`; the paper declares
//!   an *accident* when `δ < 4 m` (the LGSVL bridge halts simulations below
//!   a 4 m separation).

use serde::{Deserialize, Serialize};

/// Safety model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SafetyConfig {
    /// Maximum comfortable deceleration (m/s²) used for `d_stop`.
    pub comfort_decel: f64,
    /// Reaction latency folded into `d_stop` (s).
    pub reaction_time: f64,
    /// `δ` below which a run counts as an accident (m). The paper uses 4 m.
    pub accident_delta: f64,
    /// Minimum safety envelope the planner tries to preserve
    /// (`d_safe,min`, the 10 m threshold in §IV-B).
    pub d_safe_min: f64,
}

impl Default for SafetyConfig {
    fn default() -> Self {
        SafetyConfig {
            comfort_decel: 6.0,
            reaction_time: 0.1,
            accident_delta: av_simkit::units::ACCIDENT_DELTA_M,
            d_safe_min: 10.0,
        }
    }
}

impl SafetyConfig {
    /// Stopping distance at speed `v` (Def. 3).
    pub fn d_stop(&self, v: f64) -> f64 {
        let v = v.max(0.0);
        v * self.reaction_time + v * v / (2.0 * self.comfort_decel)
    }

    /// Time to come to a complete stop from speed `v` at the comfortable
    /// deceleration.
    pub fn t_stop(&self, v: f64) -> f64 {
        self.reaction_time + v.max(0.0) / self.comfort_decel
    }

    /// Safety envelope against an obstacle `gap` meters ahead that is
    /// itself moving away at `obstacle_speed` (≥ 0) m/s (Def. 4): the
    /// distance the AV can travel before contact is the current gap plus
    /// the obstacle's own travel during the stop.
    pub fn d_safe(&self, gap: f64, obstacle_speed: f64, v: f64) -> f64 {
        gap + obstacle_speed.max(0.0) * self.t_stop(v)
    }

    /// Safety potential `δ` given the safety envelope `d_safe` (Def. 5).
    pub fn delta(&self, d_safe: f64, v: f64) -> f64 {
        d_safe - self.d_stop(v)
    }

    /// Whether a given safety potential constitutes an accident.
    pub fn is_accident(&self, delta: f64) -> bool {
        delta < self.accident_delta
    }
}

/// Ground-truth safety potential of the ego in `world` with respect to its
/// nearest in-path obstacle. Returns `δ` and the obstacle gap; when the path
/// is clear both are reported against `horizon` (free road ahead).
pub fn ground_truth_delta(
    config: &SafetyConfig,
    world: &av_simkit::world::World,
    horizon: f64,
) -> (f64, f64) {
    let v = world.ego().speed;
    // d_safe is the instantaneous gap (the paper's longitudinal safety
    // envelope); see DESIGN.md for the calibration of the comfortable
    // deceleration in d_stop.
    let gap = world
        .in_path_obstacle(0.3)
        .map_or(horizon, |o| o.gap.min(horizon));
    (config.delta(gap, v), gap)
}

/// Ground-truth safety potential of the ego with respect to one specific
/// actor (the scripted target object), regardless of lane occupancy — the
/// quantity the safety hijacker's neural network predicts (§IV-B).
pub fn target_delta(
    config: &SafetyConfig,
    world: &av_simkit::world::World,
    target: av_simkit::actor::ActorId,
) -> Option<f64> {
    let sep = world.separation_to_ego(target).ok()?;
    Some(config.delta(sep, world.ego().speed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_simkit::actor::{Actor, ActorId, ActorKind};
    use av_simkit::behavior::Behavior;
    use av_simkit::math::Vec2;
    use av_simkit::road::Road;
    use av_simkit::world::World;

    #[test]
    fn d_stop_grows_quadratically() {
        let c = SafetyConfig::default();
        assert_eq!(c.d_stop(0.0), 0.0);
        let d10 = c.d_stop(10.0);
        let d20 = c.d_stop(20.0);
        assert!((d10 - (1.0 + 100.0 / 12.0)).abs() < 1e-9);
        assert!(d20 > 3.0 * d10, "quadratic dominance");
    }

    #[test]
    fn d_stop_clamps_negative_speed() {
        let c = SafetyConfig::default();
        assert_eq!(c.d_stop(-3.0), 0.0);
    }

    #[test]
    fn accident_threshold_is_4m() {
        let c = SafetyConfig::default();
        assert!(c.is_accident(3.99));
        assert!(!c.is_accident(4.0));
    }

    #[test]
    fn ground_truth_delta_with_and_without_obstacle() {
        let c = SafetyConfig::default();
        let ego = Actor::new(ActorId(0), ActorKind::Car, Vec2::ZERO, 10.0, Behavior::Ego);
        let mut w = World::new(Road::default(), ego);
        let (delta_clear, gap_clear) = ground_truth_delta(&c, &w, 200.0);
        assert_eq!(gap_clear, 200.0);
        assert!((delta_clear - (200.0 - c.d_stop(10.0))).abs() < 1e-9);

        w.add_actor(Actor::new(
            ActorId(1),
            ActorKind::Car,
            Vec2::new(30.0, 0.0),
            0.0,
            Behavior::Parked,
        ))
        .unwrap();
        let (delta, gap) = ground_truth_delta(&c, &w, 200.0);
        assert!((gap - (30.0 - 4.6)).abs() < 1e-9);
        assert!(delta < delta_clear);
    }

    #[test]
    fn target_delta_uses_separation() {
        let c = SafetyConfig::default();
        let ego = Actor::new(ActorId(0), ActorKind::Car, Vec2::ZERO, 10.0, Behavior::Ego);
        let mut w = World::new(Road::default(), ego);
        w.add_actor(Actor::new(
            ActorId(1),
            ActorKind::Car,
            Vec2::new(30.0, -3.5), // out of lane: still measured
            0.0,
            Behavior::Parked,
        ))
        .unwrap();
        let d = target_delta(&c, &w, ActorId(1)).unwrap();
        assert!(d < 30.0 && d > 0.0);
        assert!(target_delta(&c, &w, ActorId(9)).is_none());
    }
}
