//! Cross-sensor consistency monitor.
//!
//! A camera track that drifts away from every LiDAR return — while some
//! LiDAR return sits unclaimed near the track's *previous* position — is
//! the signature of a Move_Out/Move_In hijack (§VI-C explains how fusion
//! disagreement delays registration; this monitor turns the same
//! disagreement into an alarm when it *persists*).

use av_simkit::math::Vec2;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Consistency monitor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConsistencyConfig {
    /// Camera–LiDAR distance beyond which the pair counts as divergent (m).
    pub divergence_gate: f64,
    /// Consecutive divergent checks before alarming.
    pub persistence: u32,
}

impl Default for ConsistencyConfig {
    fn default() -> Self {
        // The divergence gate sits above the fusion association gate (2.5 m)
        // so ordinary noise never counts, and the persistence is long enough
        // to ride out LiDAR detection dropouts.
        ConsistencyConfig {
            divergence_gate: 3.0,
            persistence: 12,
        }
    }
}

/// Per-object camera-vs-LiDAR divergence accounting.
#[derive(Debug, Clone, Default)]
pub struct ConsistencyMonitor {
    config: ConsistencyConfig,
    divergent: HashMap<u64, u32>,
    alarms: u64,
}

impl ConsistencyMonitor {
    /// Creates a monitor.
    pub fn new(config: ConsistencyConfig) -> Self {
        ConsistencyMonitor {
            config,
            ..Default::default()
        }
    }

    /// Checks one camera-supported object against the LiDAR returns of the
    /// current sweep. Returns `true` when the divergence alarm fires (then
    /// resets — one alarm per episode).
    ///
    /// `object_position` is the fused/camera position; `lidar_returns` the
    /// sweep's clustered object positions.
    pub fn check(&mut self, object: u64, object_position: Vec2, lidar_returns: &[Vec2]) -> bool {
        let near = lidar_returns
            .iter()
            .any(|r| r.distance(object_position) <= self.config.divergence_gate);
        if near || lidar_returns.is_empty() {
            // Agreeing, or nothing to compare against (e.g. out of LiDAR
            // range — pedestrians at distance are camera-only and cannot be
            // checked).
            self.divergent.remove(&object);
            return false;
        }
        let count = self.divergent.entry(object).or_insert(0);
        *count += 1;
        if *count > self.config.persistence {
            self.alarms += 1;
            self.divergent.remove(&object);
            true
        } else {
            false
        }
    }

    /// Forgets an object.
    pub fn drop_object(&mut self, object: u64) {
        self.divergent.remove(&object);
    }

    /// Total alarms raised.
    pub fn alarms(&self) -> u64 {
        self.alarms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> ConsistencyMonitor {
        ConsistencyMonitor::new(ConsistencyConfig::default())
    }

    #[test]
    fn agreeing_sensors_never_alarm() {
        let mut m = monitor();
        for _ in 0..100 {
            assert!(!m.check(1, Vec2::new(30.0, 0.0), &[Vec2::new(30.4, 0.2)]));
        }
        assert_eq!(m.alarms(), 0);
    }

    #[test]
    fn empty_lidar_is_not_divergence() {
        let mut m = monitor();
        for _ in 0..100 {
            assert!(!m.check(1, Vec2::new(60.0, -4.0), &[]));
        }
        assert_eq!(m.alarms(), 0);
    }

    #[test]
    fn persistent_divergence_alarms() {
        let mut m = monitor();
        let mut fired = 0;
        for _ in 0..20 {
            fired += u64::from(m.check(1, Vec2::new(30.0, 3.5), &[Vec2::new(30.0, 0.0)]));
        }
        assert_eq!(fired, 1, "one alarm for the episode");
        assert_eq!(m.alarms(), 1);
    }

    #[test]
    fn transient_divergence_resets() {
        let mut m = monitor();
        for i in 0..60 {
            let camera = if i % 4 == 3 {
                Vec2::new(30.0, 0.2) // re-agrees every 4th check
            } else {
                Vec2::new(30.0, 3.5)
            };
            assert!(!m.check(1, camera, &[Vec2::new(30.0, 0.0)]));
        }
        assert_eq!(m.alarms(), 0);
    }

    #[test]
    fn objects_are_independent() {
        let mut m = monitor();
        for _ in 0..20 {
            m.check(1, Vec2::new(30.0, 3.5), &[Vec2::new(30.0, 0.0)]);
            assert!(!m.check(2, Vec2::new(50.0, 0.0), &[Vec2::new(50.0, 0.0)]));
        }
        assert_eq!(m.alarms(), 1);
    }
}
