//! # av-defense — intrusion detection for the perception stack
//!
//! The paper's threat model assumes "an IDS that monitors for spurious
//! activities" (§III-A) and designs every attack constraint around evading
//! it: per-frame perturbations stay within ±1σ of the modeled Kalman noise
//! (§IV-C), Disappear windows stay under the 99th percentile of natural
//! misdetection streaks (§IV-B), and the future-work section (§VIII) calls
//! for adaptive perception-parameter tuning as a countermeasure.
//!
//! This crate builds that IDS, so the stealthiness claims become *testable*:
//!
//! - [`innovation`]: a CUSUM test over normalized Kalman innovations per
//!   track — flags measurement sequences whose bias is inconsistent with
//!   the calibrated zero-mean noise (the Move_Out/Move_In signature).
//! - [`streak`]: per-object continuous-misdetection accounting against the
//!   calibrated exponential envelope (the Disappear signature).
//! - [`consistency`]: camera–LiDAR cross-sensor divergence episodes (the
//!   fusion-disagreement signature).
//! - [`ids`]: the combined monitor with alarm bookkeeping, fed from the
//!   perception pipeline's observables.
//!
//! The `defense` experiment binary (in `av-experiments`) measures the
//! resulting detection/false-positive trade-off against RoboTack and
//! against deliberately non-stealthy variants.

#![warn(missing_docs)]

pub mod consistency;
pub mod ids;
pub mod innovation;
pub mod streak;

pub use consistency::ConsistencyMonitor;
pub use ids::{Alarm, AlarmKind, Ids, IdsConfig};
pub use innovation::InnovationMonitor;
pub use streak::StreakMonitor;
