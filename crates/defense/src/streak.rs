//! Misdetection-streak envelope monitor.
//!
//! §VI-A: "if our attack fails, the object will reappear and be flagged by
//! the IDS as an attack attempt" — the IDS knows the calibrated
//! continuous-misdetection distribution (Fig. 5 a–b) and flags any object
//! whose undetected streak exceeds the class's 99th percentile. RoboTack
//! caps its Disappear windows at exactly that percentile to stay under this
//! monitor.

use av_perception::calibration::DetectorCalibration;
use av_simkit::actor::ActorKind;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Streak monitor configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreakConfig {
    /// Multiplier on the calibrated p99 before alarming (1.0 = exactly p99).
    pub envelope_factor: f64,
}

impl Default for StreakConfig {
    fn default() -> Self {
        StreakConfig {
            envelope_factor: 1.0,
        }
    }
}

/// Tracks continuous undetected frames per known object and flags envelope
/// violations.
#[derive(Debug, Clone)]
pub struct StreakMonitor {
    config: StreakConfig,
    calibration: DetectorCalibration,
    streaks: HashMap<u64, (ActorKind, u32)>,
    alarms: u64,
}

impl StreakMonitor {
    /// Creates a monitor with the calibrated streak envelopes.
    pub fn new(config: StreakConfig, calibration: DetectorCalibration) -> Self {
        StreakMonitor {
            config,
            calibration,
            streaks: HashMap::new(),
            alarms: 0,
        }
    }

    /// The envelope (frames) for a class.
    pub fn envelope(&self, kind: ActorKind) -> u32 {
        let p99 = self.calibration.for_kind(kind).misdetect_streak.p99;
        (p99 * self.config.envelope_factor).floor() as u32
    }

    /// Records that object `id` of class `kind` was *detected* this frame.
    pub fn observe_detected(&mut self, id: u64, kind: ActorKind) {
        self.streaks.insert(id, (kind, 0));
    }

    /// Records that a previously-seen object went *undetected* this frame.
    /// Returns `true` when its streak just exceeded the envelope (one alarm
    /// per streak).
    pub fn observe_missed(&mut self, id: u64) -> bool {
        let Some((kind, streak)) = self.streaks.get_mut(&id) else {
            return false; // never-seen objects are not monitored
        };
        *streak += 1;
        let envelope = {
            let p99 = self.calibration.for_kind(*kind).misdetect_streak.p99;
            (p99 * self.config.envelope_factor).floor() as u32
        };
        if *streak == envelope + 1 {
            self.alarms += 1;
            true
        } else {
            false
        }
    }

    /// Forgets an object (left the scene).
    pub fn drop_object(&mut self, id: u64) {
        self.streaks.remove(&id);
    }

    /// Total alarms raised.
    pub fn alarms(&self) -> u64 {
        self.alarms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> StreakMonitor {
        StreakMonitor::new(StreakConfig::default(), DetectorCalibration::paper())
    }

    #[test]
    fn envelopes_match_calibration() {
        let m = monitor();
        assert_eq!(m.envelope(ActorKind::Pedestrian), 31);
        assert_eq!(m.envelope(ActorKind::Car), 59);
    }

    #[test]
    fn streak_within_envelope_is_silent() {
        let mut m = monitor();
        m.observe_detected(1, ActorKind::Pedestrian);
        for _ in 0..31 {
            assert!(!m.observe_missed(1));
        }
        assert_eq!(m.alarms(), 0);
    }

    #[test]
    fn streak_beyond_envelope_alarms_once() {
        let mut m = monitor();
        m.observe_detected(1, ActorKind::Pedestrian);
        let mut alarms = 0;
        for _ in 0..40 {
            alarms += u64::from(m.observe_missed(1));
        }
        assert_eq!(alarms, 1, "exactly one alarm per streak");
        // Re-detection resets the streak.
        m.observe_detected(1, ActorKind::Pedestrian);
        for _ in 0..31 {
            assert!(!m.observe_missed(1));
        }
    }

    #[test]
    fn vehicle_envelope_is_longer() {
        let mut m = monitor();
        m.observe_detected(1, ActorKind::Car);
        let mut alarmed_at = None;
        for i in 1..=70 {
            if m.observe_missed(1) {
                alarmed_at = Some(i);
                break;
            }
        }
        assert_eq!(alarmed_at, Some(60), "one past the 59-frame envelope");
    }

    #[test]
    fn unknown_objects_are_not_monitored() {
        let mut m = monitor();
        assert!(!m.observe_missed(99));
        m.observe_detected(1, ActorKind::Car);
        m.drop_object(1);
        assert!(!m.observe_missed(1));
    }
}
