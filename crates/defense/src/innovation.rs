//! CUSUM monitor over normalized Kalman innovations.
//!
//! Under the calibrated detector noise model the innovation sequence of a
//! healthy track is zero-mean with a known scale (§II-B: the KF "assumes
//! that measurement noise follows a zero-mean Gaussian distribution"). A
//! trajectory hijack injects a *persistent, signed* bias — individually
//! each step hides inside ±1σ, but the cumulative sum drifts. A two-sided
//! CUSUM with drift `k` and threshold `h` detects exactly that.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// CUSUM parameters (in units of σ).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CusumConfig {
    /// Allowance/drift term subtracted each step (σ).
    pub drift: f64,
    /// Alarm threshold on the cumulative statistic (σ).
    pub threshold: f64,
}

impl Default for CusumConfig {
    fn default() -> Self {
        // Tuned for ~1σ-bias detection over ~15 samples with low false
        // positives on the calibrated noise.
        CusumConfig {
            drift: 0.55,
            threshold: 7.0,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct CusumState {
    high: f64,
    low: f64,
    samples: u64,
}

impl CusumState {
    /// Returns true if either side crosses the threshold.
    fn update(&mut self, z: f64, config: &CusumConfig) -> bool {
        self.samples += 1;
        self.high = (self.high + z - config.drift).max(0.0);
        self.low = (self.low - z - config.drift).max(0.0);
        self.high > config.threshold || self.low > config.threshold
    }
}

/// Per-track two-sided CUSUM over the lateral (image-x) innovation,
/// normalized by the calibrated per-class noise scale.
#[derive(Debug, Clone, Default)]
pub struct InnovationMonitor {
    config: CusumConfig,
    tracks: HashMap<u64, CusumState>,
    alarms: u64,
}

impl InnovationMonitor {
    /// Creates a monitor.
    pub fn new(config: CusumConfig) -> Self {
        InnovationMonitor {
            config,
            ..Default::default()
        }
    }

    /// Feeds one normalized innovation `z = (measured − predicted)/σ` for
    /// `track`. Returns `true` when this update raises an alarm (the
    /// track's statistic then resets — one alarm per excursion).
    pub fn observe(&mut self, track: u64, z: f64) -> bool {
        let state = self.tracks.entry(track).or_default();
        if state.update(z, &self.config) {
            self.alarms += 1;
            *state = CusumState::default();
            true
        } else {
            false
        }
    }

    /// Forgets a track (it died in the tracker).
    pub fn drop_track(&mut self, track: u64) {
        self.tracks.remove(&track);
    }

    /// Total alarms raised so far.
    pub fn alarms(&self) -> u64 {
        self.alarms
    }

    /// Current cumulative statistic for a track (diagnostics).
    pub fn statistic(&self, track: u64) -> Option<(f64, f64)> {
        self.tracks.get(&track).map(|s| (s.high, s.low))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_simkit::rng::normal;
    use rand::SeedableRng;

    #[test]
    fn zero_mean_noise_rarely_alarms() {
        let mut m = InnovationMonitor::new(CusumConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut alarms = 0;
        for _ in 0..20_000 {
            alarms += u64::from(m.observe(1, normal(&mut rng, 0.0, 1.0)));
        }
        // False-alarm rate well under 1 per 1000 samples.
        assert!(alarms < 20, "alarms = {alarms}");
    }

    #[test]
    fn persistent_one_sigma_bias_is_detected_quickly() {
        let mut m = InnovationMonitor::new(CusumConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut detected_at = None;
        for i in 0..200 {
            if m.observe(1, normal(&mut rng, 1.0, 1.0)) {
                detected_at = Some(i);
                break;
            }
        }
        let at = detected_at.expect("bias detected");
        assert!(at < 60, "detected within {at} samples");
    }

    #[test]
    fn negative_bias_is_detected_too() {
        let mut m = InnovationMonitor::new(CusumConfig::default());
        let mut detected = false;
        for _ in 0..100 {
            detected |= m.observe(1, -1.2);
        }
        assert!(detected);
    }

    #[test]
    fn alarm_resets_the_statistic() {
        let mut m = InnovationMonitor::new(CusumConfig {
            drift: 0.5,
            threshold: 2.0,
        });
        let mut first = None;
        for i in 0..20 {
            if m.observe(1, 1.5) {
                first = Some(i);
                break;
            }
        }
        let first = first.expect("alarm");
        let (high, low) = m.statistic(1).expect("track exists");
        assert_eq!((high, low), (0.0, 0.0), "reset after alarm");
        assert!(first >= 1);
    }

    #[test]
    fn tracks_are_independent() {
        let mut m = InnovationMonitor::new(CusumConfig {
            drift: 0.5,
            threshold: 3.0,
        });
        for _ in 0..10 {
            m.observe(1, 1.5);
            m.observe(2, 0.0);
        }
        let (h2, _) = m.statistic(2).expect("track 2");
        assert!(h2 < 0.5, "clean track unaffected by the attacked one");
        m.drop_track(1);
        assert!(m.statistic(1).is_none());
    }
}
