//! The combined intrusion-detection system.
//!
//! The IDS bolts onto the perception pipeline's observables — raw detector
//! output, LiDAR sweeps, and the fused world model — and keeps its own
//! lightweight track table so it needs no cooperation from the (possibly
//! compromised) tracker. Three monitors run side by side:
//!
//! 1. [`InnovationMonitor`] — CUSUM over detection-vs-prediction residuals.
//! 2. [`StreakMonitor`] — continuous-misdetection envelope per class.
//! 3. [`ConsistencyMonitor`] — persistent camera/LiDAR divergence.

use crate::consistency::{ConsistencyConfig, ConsistencyMonitor};
use crate::innovation::{CusumConfig, InnovationMonitor};
use crate::streak::{StreakConfig, StreakMonitor};
use av_perception::calibration::DetectorCalibration;
use av_perception::types::{Detection, Support, WorldObject};
use av_sensing::lidar::LidarScan;
use av_simkit::actor::ActorKind;
use av_simkit::math::Vec2;
use serde::{Deserialize, Serialize};

/// Which monitor raised an alarm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlarmKind {
    /// Biased innovation sequence (step-like tampering). Note: a hijack
    /// that *walks* the box at constant velocity is kinematically
    /// indistinguishable from real motion at this level — that is exactly
    /// why RoboTack evades innovation monitoring (§IV-C).
    Innovation,
    /// Misdetection streak beyond the calibrated envelope (Disappear).
    Streak,
    /// Persistent camera–LiDAR divergence (Move_Out / Move_In).
    CrossSensor,
    /// Kinematically implausible sustained lateral rate — the
    /// countermeasure direction §VIII proposes: vehicles do not slide
    /// sideways at several body-widths per second.
    Kinematics,
}

/// One IDS alarm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Alarm {
    /// Time raised (s).
    pub t: f64,
    /// Raising monitor.
    pub kind: AlarmKind,
}

/// IDS configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IdsConfig {
    /// Innovation CUSUM parameters.
    pub cusum: CusumConfig,
    /// Streak-envelope parameters.
    pub streak: StreakConfig,
    /// Cross-sensor parameters.
    pub consistency: ConsistencyConfig,
    /// Detector calibration the monitors normalize against.
    pub calibration: DetectorCalibration,
    /// LiDAR range within which a vehicle is *expected* to return (m).
    pub lidar_vehicle_range: f64,
    /// Sustained ground-frame lateral speed (m/s) beyond which a vehicle
    /// track is kinematically implausible (cars do not slide sideways).
    pub plausible_lateral_mps: f64,
    /// Consecutive implausible frames before the kinematics alarm.
    pub plausibility_persistence: u32,
    /// Image width/height (px) for departure detection at the borders.
    pub image_size: (f64, f64),
    /// Pinhole focal length (px) for ground back-projection.
    pub focal: f64,
}

impl Default for IdsConfig {
    fn default() -> Self {
        IdsConfig {
            cusum: CusumConfig::default(),
            streak: StreakConfig::default(),
            consistency: ConsistencyConfig::default(),
            calibration: DetectorCalibration::paper(),
            lidar_vehicle_range: 70.0,
            plausible_lateral_mps: 5.0,
            plausibility_persistence: 6,
            image_size: (1920.0, 1080.0),
            focal: 960.0 / (30f64.to_radians()).tan(),
        }
    }
}

/// The IDS's own minimal track: an alpha–beta predictor over the detection
/// center, independent of the main tracker.
#[derive(Debug, Clone)]
struct IdsTrack {
    id: u64,
    kind: ActorKind,
    center: (f64, f64),
    velocity: (f64, f64),
    width: f64,
    height: f64,
    hits: u32,
    misses: u32,
    implausible: u32,
    /// Ground-frame lateral estimate (m) and its rate (m/s).
    ground_y: f64,
    ground_vy: f64,
    ground_init: bool,
}

/// The combined IDS.
#[derive(Debug, Clone)]
pub struct Ids {
    config: IdsConfig,
    innovation: InnovationMonitor,
    streak: StreakMonitor,
    consistency: ConsistencyMonitor,
    tracks: Vec<IdsTrack>,
    next_id: u64,
    alarms: Vec<Alarm>,
}

impl Ids {
    /// Creates the IDS.
    pub fn new(config: IdsConfig) -> Self {
        Ids {
            innovation: InnovationMonitor::new(config.cusum),
            streak: StreakMonitor::new(config.streak, config.calibration),
            consistency: ConsistencyMonitor::new(config.consistency),
            config,
            tracks: Vec::new(),
            next_id: 0,
            alarms: Vec::new(),
        }
    }

    /// All alarms raised so far.
    pub fn alarms(&self) -> &[Alarm] {
        &self.alarms
    }

    /// Alarms of one kind.
    pub fn alarm_count(&self, kind: AlarmKind) -> usize {
        self.alarms.iter().filter(|a| a.kind == kind).count()
    }

    /// Feeds one camera frame's raw detections at time `t`.
    pub fn on_camera(&mut self, t: f64, detections: &[Detection]) {
        let dt = 1.0 / av_simkit::units::CAMERA_HZ;
        let mut used = vec![false; detections.len()];

        // Greedy nearest-neighbor association against predictions.
        for track in &mut self.tracks {
            let predicted = (
                track.center.0 + track.velocity.0 * dt,
                track.center.1 + track.velocity.1 * dt,
            );
            let gate = 4.0 * track.width.hypot(track.height).max(8.0);
            let mut candidates: Vec<(usize, &Detection, f64)> = detections
                .iter()
                .enumerate()
                .filter(|(i, d)| !used[*i] && d.kind.is_vehicle() == track.kind.is_vehicle())
                .map(|(i, d)| {
                    let (cx, cy) = d.bbox.center();
                    (i, d, (cx - predicted.0).hypot(cy - predicted.1))
                })
                .filter(|(_, _, dist)| *dist <= gate)
                .collect();
            candidates.sort_by(|a, b| a.2.total_cmp(&b.2));
            // Ambiguous association (two plausible candidates, e.g. objects
            // crossing each other in the image) would let identity swaps
            // masquerade as attacks: keep tracking, but skip the monitors.
            let ambiguous = candidates.len() >= 2
                && candidates[1].2 < 2.0 * candidates[0].2.max(track.width * 0.5);
            match candidates.first().copied() {
                Some((i, det, _)) => {
                    used[i] = true;
                    let (cx, cy) = det.bbox.center();
                    // Innovation along the attack axis (image x), in σ units.
                    // Skipped for strongly radial tracks (fast apparent
                    // growth/shrink): the linear predictor is invalid there
                    // and perspective acceleration masquerades as bias.
                    let class = self.config.calibration.for_kind(track.kind);
                    let sigma = (class.center_x.std_dev * track.width).max(1.0);
                    let z = (cx - predicted.0) / sigma;
                    let growth_rate =
                        ((det.bbox.width() - track.width) / dt / track.width.max(1.0)).abs();
                    if track.hits >= 3
                        && growth_rate < 0.25
                        && !ambiguous
                        && self.innovation.observe(track.id, z)
                    {
                        self.alarms.push(Alarm {
                            t,
                            kind: AlarmKind::Innovation,
                        });
                    }
                    // Alpha-beta update of the IDS's own predictor.
                    let (alpha, beta) = (0.4, 0.15);
                    track.velocity.0 += beta / dt * (cx - predicted.0);
                    track.velocity.1 += beta / dt * (cy - predicted.1);
                    track.center.0 = predicted.0 + alpha * (cx - predicted.0);
                    track.center.1 = predicted.1 + alpha * (cy - predicted.1);
                    track.width += 0.3 * (det.bbox.width() - track.width);
                    track.height += 0.3 * (det.bbox.height() - track.height);
                    track.hits += 1;
                    track.misses = 0;
                    self.streak.observe_detected(track.id, track.kind);
                    // Kinematic plausibility on the *ground-frame* lateral
                    // rate (image rates conflate radial approach with
                    // lateral motion). Depth from apparent class height.
                    let (iw, ih) = self.config.image_size;
                    let clipped =
                        det.bbox.x0 <= 2.0 || det.bbox.x1 >= iw - 2.0 || det.bbox.y1 >= ih - 2.0;
                    if track.kind.is_vehicle() && !clipped {
                        // Raw detection values for both column and depth:
                        // mixing differently-lagged smoothed estimates turns
                        // fast radial approach into phantom lateral motion
                        // (and border-clipped boxes corrupt the apparent
                        // height entirely).
                        let class_height = av_simkit::actor::Size::for_kind(track.kind).height;
                        let depth = self.config.focal * class_height / det.bbox.height().max(1.0);
                        let (cx_pp, _) = (
                            self.config.image_size.0 / 2.0,
                            self.config.image_size.1 / 2.0,
                        );
                        let y_ground = -(cx - cx_pp) * depth / self.config.focal;
                        if track.ground_init {
                            let (ga, gb) = (0.3, 0.1);
                            let predicted = track.ground_y + track.ground_vy * dt;
                            let residual = y_ground - predicted;
                            if residual.abs() > 2.5 {
                                // A >2.5 m single-frame lateral jump is an
                                // association anomaly (identity swap), not
                                // motion: restart the filter.
                                track.ground_y = y_ground;
                                track.ground_vy = 0.0;
                                track.implausible = 0;
                            } else {
                                track.ground_y = predicted + ga * residual;
                                track.ground_vy += gb / dt * residual;
                            }
                        } else {
                            track.ground_y = y_ground;
                            track.ground_init = true;
                        }
                        if track.hits >= 6 && !ambiguous {
                            if track.ground_vy.abs() > self.config.plausible_lateral_mps {
                                track.implausible += 1;
                                if track.implausible == self.config.plausibility_persistence {
                                    if std::env::var("IDS_DEBUG").is_ok() {
                                        eprintln!(
                                            "KIN t {t:.2} track {} u {:.0} w {:.0} h {:.0} depth {:.1} gy {:.2} gvy {:.2}",
                                            track.id, track.center.0, track.width, track.height, depth, track.ground_y, track.ground_vy
                                        );
                                    }
                                    self.alarms.push(Alarm {
                                        t,
                                        kind: AlarmKind::Kinematics,
                                    });
                                }
                            } else {
                                track.implausible = 0;
                            }
                        }
                    }
                }
                None => {
                    track.misses += 1;
                    track.center.0 = predicted.0;
                    track.center.1 = predicted.1;
                    // Departure is not misdetection: a track whose predicted
                    // position has drifted to the image border (or grown
                    // huge — about to pass) simply left the field of view.
                    let (iw, ih) = self.config.image_size;
                    let departing = predicted.0 < 0.12 * iw
                        || predicted.0 > 0.88 * iw
                        || predicted.1 > 0.92 * ih
                        || track.width > 0.3 * iw;
                    if departing {
                        track.misses = u32::MAX / 2; // retire below
                    } else if track.hits >= 3 && self.streak.observe_missed(track.id) {
                        self.alarms.push(Alarm {
                            t,
                            kind: AlarmKind::Streak,
                        });
                    }
                }
            }
        }

        // Retire tracks that have been gone far beyond any envelope.
        let limit = self.streak.envelope(ActorKind::Car) + 30;
        let (innovation, streak, consistency) = (
            &mut self.innovation,
            &mut self.streak,
            &mut self.consistency,
        );
        self.tracks.retain(|tr| {
            let keep = tr.misses <= limit;
            if !keep {
                innovation.drop_track(tr.id);
                streak.drop_object(tr.id);
                consistency.drop_object(tr.id);
            }
            keep
        });

        // New tracks for unmatched detections.
        for (i, det) in detections.iter().enumerate() {
            if used[i] {
                continue;
            }
            let (cx, cy) = det.bbox.center();
            self.tracks.push(IdsTrack {
                id: self.next_id,
                kind: det.kind,
                center: (cx, cy),
                velocity: (0.0, 0.0),
                width: det.bbox.width(),
                height: det.bbox.height(),
                hits: 1,
                misses: 0,
                implausible: 0,
                ground_y: 0.0,
                ground_vy: 0.0,
                ground_init: false,
            });
            self.next_id += 1;
        }
    }

    /// Feeds one LiDAR sweep plus the current fused world model at time `t`.
    pub fn on_lidar(&mut self, t: f64, scan: &LidarScan, world_model: &[WorldObject]) {
        let returns: Vec<Vec2> = scan.objects.iter().map(|o| o.position).collect();
        for obj in world_model {
            // Only camera-steered vehicles inside the expected LiDAR range
            // can be cross-checked.
            let camera_steered =
                matches!(obj.support, Support::CameraOnly | Support::CameraAndLidar);
            if !camera_steered
                || !obj.kind.is_vehicle()
                || obj.position.norm() > self.config.lidar_vehicle_range
            {
                continue;
            }
            if self.consistency.check(obj.id, obj.position, &returns) {
                self.alarms.push(Alarm {
                    t,
                    kind: AlarmKind::CrossSensor,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use av_sensing::bbox::BBox;

    fn det(cx: f64, cy: f64, w: f64, h: f64) -> Detection {
        Detection {
            kind: ActorKind::Car,
            bbox: BBox::from_center(cx, cy, w, h),
            score: 0.9,
            provenance: None,
        }
    }

    #[test]
    fn steady_detections_raise_no_alarms() {
        let mut ids = Ids::new(IdsConfig::default());
        for i in 0..200 {
            ids.on_camera(f64::from(i) / 15.0, &[det(960.0, 620.0, 120.0, 90.0)]);
        }
        assert!(ids.alarms().is_empty());
    }

    #[test]
    fn step_tampering_triggers_innovation_alarm() {
        // A naive attacker teleports the box 3σ and holds it there: the
        // residuals spike until the predictor re-converges — the CUSUM
        // catches the step.
        let mut ids = Ids::new(IdsConfig::default());
        for i in 0..10 {
            ids.on_camera(f64::from(i) / 15.0, &[det(960.0, 620.0, 120.0, 90.0)]);
        }
        let sigma = 0.464 * 120.0;
        for i in 0..40 {
            ids.on_camera(
                f64::from(10 + i) / 15.0,
                &[det(960.0 + 6.0 * sigma, 620.0, 120.0, 90.0)],
            );
        }
        assert!(
            ids.alarm_count(AlarmKind::Innovation) > 0,
            "a 6σ step must be flagged"
        );
    }

    #[test]
    fn constant_velocity_walk_evades_innovation_but_not_kinematics() {
        // RoboTack-style: walk the box laterally at ~1σ per frame. The
        // innovation monitor adapts (this is the paper's stealthiness);
        // the kinematic-plausibility monitor flags the implied sideways
        // speed instead.
        let mut ids = Ids::new(IdsConfig::default());
        for i in 0..10 {
            ids.on_camera(f64::from(i) / 15.0, &[det(960.0, 620.0, 120.0, 90.0)]);
        }
        let step = 0.464 * 120.0; // 1σ per frame ≈ 7 widths/s
        for i in 0..40 {
            let cx = 960.0 + step * f64::from(i + 1);
            ids.on_camera(f64::from(10 + i) / 15.0, &[det(cx, 620.0, 120.0, 90.0)]);
        }
        assert!(
            ids.alarm_count(AlarmKind::Kinematics) > 0,
            "implausible lateral rate flagged"
        );
    }

    #[test]
    fn plausible_lateral_motion_is_not_flagged() {
        // A real lane change: ~0.5 widths/s.
        let mut ids = Ids::new(IdsConfig::default());
        for i in 0..120 {
            let cx = 960.0 + 4.0 * f64::from(i); // 60 px/s at 120 px width
            ids.on_camera(f64::from(i) / 15.0, &[det(cx, 620.0, 120.0, 90.0)]);
        }
        assert_eq!(ids.alarm_count(AlarmKind::Kinematics), 0);
    }

    #[test]
    fn long_disappearance_triggers_streak_alarm() {
        let mut ids = Ids::new(IdsConfig::default());
        for i in 0..10 {
            ids.on_camera(f64::from(i) / 15.0, &[det(960.0, 620.0, 120.0, 90.0)]);
        }
        for i in 0..70 {
            ids.on_camera(f64::from(10 + i) / 15.0, &[]);
        }
        assert_eq!(ids.alarm_count(AlarmKind::Streak), 1);
    }

    #[test]
    fn cross_sensor_divergence_alarm() {
        use av_sensing::lidar::LidarObject;
        let mut ids = Ids::new(IdsConfig::default());
        let obj = WorldObject {
            id: 7,
            kind: ActorKind::Car,
            position: Vec2::new(30.0, 3.5),
            velocity: Vec2::ZERO,
            extent: (4.6, 1.9),
            support: Support::CameraOnly,
            track: None,
            provenance: None,
        };
        let scan = LidarScan {
            t: 0.0,
            objects: vec![LidarObject {
                position: Vec2::new(30.0, 0.0),
                extent: (4.6, 1.9),
            }],
        };
        for i in 0..20 {
            ids.on_lidar(f64::from(i) * 0.1, &scan, &[obj]);
        }
        assert_eq!(ids.alarm_count(AlarmKind::CrossSensor), 1);
    }

    #[test]
    fn pedestrians_out_of_lidar_range_are_not_cross_checked() {
        use av_sensing::lidar::LidarObject;
        let mut ids = Ids::new(IdsConfig::default());
        let ped = WorldObject {
            id: 9,
            kind: ActorKind::Pedestrian,
            position: Vec2::new(50.0, -4.0),
            velocity: Vec2::ZERO,
            extent: (0.5, 0.6),
            support: Support::CameraOnly,
            track: None,
            provenance: None,
        };
        let scan = LidarScan {
            t: 0.0,
            objects: vec![LidarObject {
                position: Vec2::new(20.0, 0.0),
                extent: (4.6, 1.9),
            }],
        };
        for i in 0..50 {
            ids.on_lidar(f64::from(i) * 0.1, &scan, &[ped]);
        }
        assert_eq!(ids.alarm_count(AlarmKind::CrossSensor), 0);
    }
}
