//! Batch-size sweep for the lockstep batch engine.
//!
//! Times the NN-oracle RoboTack campaign (the paper's primary workload, and
//! the one cross-session GEMM batching accelerates) under sequential dispatch
//! and `DispatchMode::Batched` at several batch sizes, asserting along the way
//! that every per-run digest is bit-identical to the sequential engine.
//!
//! This regenerates the `batched_campaign` section of `BENCH_suite.json`:
//!
//! ```text
//! cargo run --release --example batch_sweep
//! ```

use av_experiments::campaign::{run_campaign_dispatch, DispatchMode};
use av_experiments::prelude::*;
use av_experiments::train_sh::train_oracle_on;
use av_neural::train::Dataset;
use std::time::Instant;

const RUNS: u64 = 32;
const REPS: u32 = 3;

fn synthetic_dataset(n: usize) -> Dataset {
    Dataset::from_rows((0..n).map(|i| {
        let delta = 5.0 + (i % 20) as f64 * 2.0;
        let k = (i % 9) as f64 * 10.0;
        (vec![delta, -3.0, 0.5, -0.1, k], vec![delta - 0.1 * k])
    }))
}

fn campaign() -> Campaign {
    let oracle = train_oracle_on(&synthetic_dataset(128)).expect("synthetic dataset trains");
    Campaign::new(
        "batch-sweep",
        ScenarioId::Ds1,
        AttackerSpec::RoboTack {
            vector: Some(AttackVector::Disappear),
            oracle: OracleSpec::Nn(oracle.oracle),
        },
        RUNS,
        900,
    )
}

/// Best-of-`REPS` wall-clock for one dispatch mode, plus the run digests.
fn time_mode(campaign: &Campaign, mode: DispatchMode) -> (f64, Vec<String>) {
    let mut best = f64::INFINITY;
    let mut digests = Vec::new();
    for _ in 0..REPS {
        let t0 = Instant::now();
        let result = run_campaign_dispatch(campaign, 1, mode).expect("one thread is nonzero");
        best = best.min(t0.elapsed().as_secs_f64());
        digests = result.outcomes.iter().map(|o| o.record.digest()).collect();
    }
    (best, digests)
}

fn main() {
    println!("training the synthetic oracle ...");
    let campaign = campaign();

    println!("timing the {RUNS}-run DS-1 NN campaign (best of {REPS}, 1 thread):\n");
    let (seq_s, seq_digests) = time_mode(&campaign, DispatchMode::WorkStealing);
    println!(
        "{:<14} {:>9.1} ms {:>8}",
        "sequential",
        seq_s * 1e3,
        "1.00x"
    );

    for batch_size in [4usize, 8, 16, 32, 64] {
        let (s, digests) = time_mode(&campaign, DispatchMode::Batched { batch_size });
        assert_eq!(
            digests, seq_digests,
            "batch_size={batch_size}: digests diverged from sequential"
        );
        println!(
            "{:<14} {:>9.1} ms {:>7.2}x   digests identical",
            format!("batched_{batch_size}"),
            s * 1e3,
            seq_s / s
        );
    }
}
