//! The paper's highest-impact case: hijacking a crossing pedestrian (DS-2).
//!
//! Trains the safety-hijacker neural network on a small δ_inject × k sweep
//! (§IV-B), then runs a batch of attacked simulations and prints the attack
//! decisions and outcomes — the scenario where the paper reports 97.8 %
//! forced emergency braking and 84.1 % collisions (Table II).
//!
//! Run with: `cargo run --release --example pedestrian_crossing_attack`

use av_experiments::oracle_cache::OracleCache;
use av_experiments::prelude::*;
use av_experiments::suite::oracle_for;
use av_experiments::train_sh::SweepConfig;

fn main() {
    println!("=== DS-2: pedestrian crossing under Move_Out attack ===\n");
    println!("collecting the ADS-response dataset and training the NN oracle ...");
    let sweep = SweepConfig {
        delta_injects: vec![6.0, 12.0, 18.0, 24.0, 30.0, 38.0, 46.0],
        ks: vec![10, 20, 30, 45, 60, 80],
        seeds_per_cell: 3,
        ..SweepConfig::default()
    };
    let cache = OracleCache::at(OracleCache::default_dir());
    let (oracle, description) = oracle_for(ScenarioId::Ds2, AttackVector::MoveOut, &sweep, &cache);
    println!("  {description}\n");

    let runs = 20;
    let mut eb = 0;
    let mut crashes = 0;
    for seed in 0..runs {
        let out = SimSession::builder(ScenarioId::Ds2)
            .seed(9000 + seed)
            .attacker(AttackerSpec::RoboTack {
                vector: Some(AttackVector::MoveOut),
                oracle: oracle.clone(),
            })
            .build()
            .run();
        eb += u64::from(out.eb_after_attack);
        crashes += u64::from(out.accident);
        if seed < 6 {
            println!(
                "run {seed}: launch t = {:5.2?} s | K = {:2} | min δ = {:5.1} m | EB {} | accident {}",
                out.attack.launched_at.unwrap_or(f64::NAN),
                out.attack.k,
                out.min_delta_post_attack.unwrap_or(f64::NAN),
                out.eb_after_attack,
                out.accident,
            );
        }
    }
    println!(
        "\nover {runs} runs: emergency braking {eb} ({:.0}%), accidents {crashes} ({:.0}%)",
        100.0 * eb as f64 / runs as f64,
        100.0 * crashes as f64 / runs as f64
    );
    println!("paper (Table II, DS-2-Move_Out-R): EB 97.8%, crashes 84.1%");
}
