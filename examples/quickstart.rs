//! Quickstart: install RoboTack on a simulated AV and watch one attack.
//!
//! Builds the paper's DS-1 scenario (ego following a slower car), wires the
//! full ADS (camera + LiDAR perception, planner, controller), installs the
//! malware as a man-in-the-middle on the camera link, and prints what
//! happens — including the moment the safety hijacker decides to strike.
//!
//! Run with: `cargo run --release --example quickstart`

use av_experiments::prelude::*;
use robotack::scenario_matcher::ScenarioMatcher;
use robotack::vector::AttackVector;

fn main() {
    println!("=== RoboTack quickstart ===\n");
    println!("Table I — what the scenario matcher would attack:\n");
    println!("{}", ScenarioMatcher::default().table());

    // A golden (attack-free) run first.
    let golden = SimSession::builder(ScenarioId::Ds1).seed(7).build().run();
    let golden_min_delta = golden
        .record
        .samples
        .iter()
        .map(|s| s.delta)
        .fold(f64::INFINITY, f64::min);
    println!(
        "Golden DS-1 run: {:.1} s simulated, min safety potential {:.1} m, \
         emergency braking: {}, collision: {}\n",
        golden.sim_seconds, golden_min_delta, golden.eb_any, golden.collided
    );

    // Same scenario, same seed — but the malware rides on the camera link.
    // (The closed-form kinematic oracle is used here so the example runs
    // instantly; the experiment binaries train the paper's neural oracle.)
    let attacked = SimSession::builder(ScenarioId::Ds1)
        .seed(7)
        .attacker(AttackerSpec::RoboTack {
            vector: Some(AttackVector::MoveOut),
            oracle: OracleSpec::Kinematic,
        })
        .build()
        .run();
    println!("Attacked DS-1 run (Move_Out):");
    match attacked.attack.launched_at {
        Some(t) => {
            let f = attacked
                .attack
                .features_at_launch
                .expect("features recorded");
            println!("  t = {t:.1} s: safety hijacker fired");
            println!(
                "    perceived state: δ = {:.1} m, v_rel = {:.1} m/s",
                f.delta, f.v_rel_lon
            );
            println!(
                "    plan: perturb K = {} camera frames (K' = {:?} to move the box out)",
                attacked.attack.k, attacked.attack.k_prime
            );
        }
        None => println!("  the safety hijacker never found an opportune moment"),
    }
    println!(
        "  outcome: min δ after attack = {:.1} m, emergency braking: {}, accident: {}",
        attacked.min_delta_post_attack.unwrap_or(f64::NAN),
        attacked.eb_after_attack,
        attacked.accident,
    );
    println!("\n(δ < 4 m is the paper's accident threshold.)");
}
