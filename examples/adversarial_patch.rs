//! Pixel-space demonstration: the trajectory hijacker's bounding-box
//! translations are realizable as a small adversarial patch (§IV-C).
//!
//! Renders a camera frame of a DS-1-like scene into the luminance raster,
//! applies the patch that shifts (and then suppresses) the target's detected
//! box, and reports what a pixel-driven detector sees before and after —
//! plus the perturbation budget spent.
//!
//! Run with: `cargo run --release --example adversarial_patch`

use av_sensing::camera::Camera;
use av_sensing::frame::capture;
use av_simkit::actor::{Actor, ActorId, ActorKind};
use av_simkit::behavior::Behavior;
use av_simkit::math::Vec2;
use av_simkit::road::Road;
use av_simkit::world::World;
use robotack::patch;

fn main() {
    println!("=== pixel-space adversarial patch ===\n");
    // A car 30 m ahead in the ego lane.
    let ego = Actor::new(ActorId(0), ActorKind::Car, Vec2::ZERO, 12.5, Behavior::Ego);
    let mut world = World::new(Road::default(), ego);
    world
        .add_actor(Actor::new(
            ActorId(1),
            ActorKind::Car,
            Vec2::new(30.0, 0.0),
            7.0,
            Behavior::CruiseStraight { speed: 7.0 },
        ))
        .expect("fresh world");

    let camera = Camera::default();
    let frame = capture(&camera, &world, 0, true);
    let truth = frame.truth_for(ActorId(1)).expect("car in view");
    let clean = frame.raster.clone().expect("raster rendered");

    let detected = patch::detect(&clean, &truth.bbox).expect("detector sees the car");
    println!(
        "clean frame : truth box center u = {:.0} px, detector box center u = {:.0} px",
        truth.bbox.center().0,
        detected.center().0
    );

    // Shift the detected box left by 80 px — the Move_Out direction for an
    // in-lane target (ground-equivalent ≈ {:.1} m at this depth).
    let du = -80.0;
    let ground_shift = -du * truth.depth / camera.focal;
    let mut patched = clean.clone();
    patch::apply_shift(&mut patched, &truth.bbox, du);
    let shifted = patch::detect(&patched, &truth.bbox).expect("still detected");
    println!(
        "patched     : detector box center u = {:.0} px (shift {:.0} px ≈ {:.2} m lateral at {:.0} m)",
        shifted.center().0,
        shifted.center().0 - detected.center().0,
        ground_shift,
        truth.depth
    );

    let budget = clean.l1_distance(&patched);
    let cells = (clean.width() * clean.height()) as f64;
    println!(
        "perturbation: L1 = {budget:.1} over {cells:.0} cells \
         (mean |Δ| = {:.4}, max per-cell bound = {})",
        budget / cells,
        patch::MAX_CELL_DELTA
    );

    // Disappear: suppress the detection entirely.
    let mut suppressed = clean.clone();
    patch::suppress(&mut suppressed, &truth.bbox);
    match patch::detect(&suppressed, &truth.bbox) {
        None => println!("suppressed  : detector no longer sees the car (Disappear)"),
        Some(b) => println!(
            "suppressed  : detector still sees a box at u = {:.0}?!",
            b.center().0
        ),
    }
    println!(
        "suppression : L1 = {:.1} (patch confined to the {:.0}×{:.0} px box)",
        clean.l1_distance(&suppressed),
        truth.bbox.width(),
        truth.bbox.height()
    );
}
